// Package harris implements Harris's non-blocking linked-list set
// (Algorithm 1 in Appendix B of the paper), the data structure at the
// heart of the ERA theorem's lower bound.
//
// The defining property: search traverses *through* logically deleted
// (marked) nodes without unlinking them one at a time — when it finally
// finds its window it unlinks the whole marked run with one CAS. That is
// what makes the list fast, access-aware (Appendix D), and fundamentally
// incompatible with per-pointer protection schemes such as HP/HE/IBR
// (Appendix E): a traversal can hold a reference into a marked run whose
// nodes were already retired by their deleters and reclaimed.
//
// retire() placement follows the paper exactly: an insert that loses the
// key-already-present race retires its fresh node (line 34); a delete
// retires its victim after it is guaranteed unlinked (line 52). Nodes
// unlinked in bulk by search are retired by their respective deleters.
package harris

import (
	"repro/internal/ds"
	"repro/internal/mem"
	"repro/internal/smr"
)

// List is Harris's lock-free linked-list set.
type List struct {
	ds.Instr
	s          smr.Scheme
	head, tail mem.Ref
}

var _ ds.Set = (*List)(nil)

// New builds an empty list over scheme s. The two sentinels are allocated
// on behalf of thread 0.
func New(s smr.Scheme, opt ds.Options) (*List, error) {
	l := &List{Instr: ds.Instr{Opt: opt, A: s.Heap()}, s: s}
	ds.RegisterLinks(s, []int{ds.WNext})
	var err error
	if l.tail, err = ds.NewSentinel(s, 0, ds.KeyMax); err != nil {
		return nil, err
	}
	if l.head, err = ds.NewSentinel(s, 0, ds.KeyMin); err != nil {
		return nil, err
	}
	if !s.WritePtr(0, l.head, ds.WNext, l.tail) {
		return nil, ds.ErrCorrupted
	}
	return l, nil
}

// Name implements ds.Set.
func (l *List) Name() string { return "harris" }

// Head returns the head sentinel (used by the adversary scripts).
func (l *List) Head() mem.Ref { return l.head }

// Tail returns the tail sentinel.
func (l *List) Tail() mem.Ref { return l.tail }

// maxSteps bounds a single traversal. A healthy list can never be longer
// than the heap; only an unsafe scheme that recycled memory under a
// traversal can produce a cycle, and the bound turns that livelock into a
// detectable ds.ErrCorrupted.
const maxSteps = 1 << 22

// iterBatch bounds how many keys one Iterate operation bracket emits.
const iterBatch = 512

// cursor caches the last validated predecessor across the ops of a
// fused batch (ds.BatchSet), exactly like the in-op bounded-restart
// anchor: within one smr bracket window the cached pred stays
// protected, so the next op of a key-sorted batch starts its search
// from it instead of the head. Invalidated at every bracket renewal.
type cursor struct {
	pred mem.Ref
	key  int64 // pred's key, for the cu.key < key resume check
	slot int   // scheme slot still protecting pred
	ok   bool
}

type status uint8

const (
	stOK status = iota
	stRestart
	stCorrupt
	stGuard  // traversal step budget exhausted
	stAnchor // the cached restart anchor went stale; rewind to head
)

// search traverses from anchor to the first unmarked node with key >= key,
// passing through marked nodes without unlinking them. It returns the
// window (pred, predNext, curr) where predNext is the value read from
// pred's next field (the expected value for an unlink CAS) plus the slot
// protecting pred; stRestart means the scheme demanded a rollback.
//
// anchor is l.head on a fresh traversal, or a validated cached pred on a
// bounded restart (protected in aslot). A non-head anchor whose next
// pointer reads back marked returns stAnchor: an unmarked pred is what the
// unlink CAS's correctness rests on (writing an unmarked next value into a
// marked node would resurrect it), so a stale anchor falls back to head.
//
// Protection slots rotate over {0,1,2}: pred is protected in sp, curr in
// sc, and each new target is read into the remaining slot. steps is the
// caller's operation-wide step budget.
func (l *List) search(tid int, key int64, anchor mem.Ref, anchorKey int64, aslot int, steps *uint64) (pred, predNext, curr mem.Ref, predKey int64, predSlot int, st status) {
	sp := aslot
	sc := (aslot + 1) % 3
	pred = anchor
	predKey = anchorKey
	pn, ok := l.s.ReadPtr(tid, sc, pred, ds.WNext)
	if !ok {
		return mem.NilRef, mem.NilRef, mem.NilRef, 0, 0, stRestart
	}
	if anchor == l.head {
		l.Hit(tid, ds.PointSearchHead, uint64(key))
	} else if pn.Marked() {
		return mem.NilRef, mem.NilRef, mem.NilRef, 0, 0, stAnchor
	}
	predNext = pn
	curr = pn.WithoutMark()
	for {
		if *steps++; *steps > maxSteps {
			return mem.NilRef, mem.NilRef, mem.NilRef, 0, 0, stGuard
		}
		if curr.IsNil() {
			return mem.NilRef, mem.NilRef, mem.NilRef, 0, 0, stCorrupt
		}
		l.Hit(tid, ds.PointSearchStep, uint64(curr))
		sn := 3 - sp - sc
		cn, ok := l.s.ReadPtr(tid, sn, curr, ds.WNext)
		if !ok {
			return mem.NilRef, mem.NilRef, mem.NilRef, 0, 0, stRestart
		}
		if cn.Marked() {
			// Logically deleted: traverse through without unlinking.
			ckey, ok := l.s.Read(tid, curr, ds.WKey)
			if !ok {
				return mem.NilRef, mem.NilRef, mem.NilRef, 0, 0, stRestart
			}
			l.Hit(tid, ds.PointSearchVisitMarked, ckey)
			curr = cn.WithoutMark()
			sc = sn
			continue
		}
		ckey, ok := l.s.Read(tid, curr, ds.WKey)
		if !ok {
			return mem.NilRef, mem.NilRef, mem.NilRef, 0, 0, stRestart
		}
		l.Hit(tid, ds.PointSearchVisit, ckey)
		if int64(ckey) >= key {
			return pred, predNext, curr, predKey, sp, stOK
		}
		pred, predNext = curr, cn
		predKey = int64(ckey)
		sp, sc = sc, sn
		curr = cn.WithoutMark()
	}
}

// find runs search until it returns a clean window: pred directly links
// to curr (unlinking any marked run in between, paper line 18) and curr is
// unmarked (lines 14-16).
//
// Restart policy (the bounded-restart overhaul): contention — losing the
// unlink CAS, or curr getting marked after the window was found — resumes
// the next search from the still-protected pred instead of the head, so a
// long chain is not re-walked inside the same epoch-pinning bracket.
// Scheme-requested rollbacks (stRestart) always rerun from the head: the
// operation entry point is the rollback checkpoint.
// A non-nil cu resumes from the batch cursor when valid and records the
// final validated pred back into it on success.
func (l *List) find(tid int, key int64, cu *cursor) (pred, curr mem.Ref, err error) {
	var steps, restarts, headRestarts uint64
	defer func() { l.Trav.Record(steps, restarts, headRestarts) }()
	anchor, anchorKey, aslot := l.head, int64(ds.KeyMin), 0
	if cu != nil {
		if cu.ok && cu.key < key {
			anchor, anchorKey, aslot = cu.pred, cu.key, cu.slot
		}
		cu.ok = false
	}
	rewind := func() {
		anchor, anchorKey, aslot = l.head, int64(ds.KeyMin), 0
		restarts++
		headRestarts++
	}
	resume := func(pred mem.Ref, predKey int64, pslot int) {
		restarts++
		if l.Opt.HeadRestart {
			anchor, anchorKey, aslot = l.head, int64(ds.KeyMin), 0
			headRestarts++
			return
		}
		anchor, anchorKey, aslot = pred, predKey, pslot
	}
	for {
		if steps++; steps > maxSteps {
			return mem.NilRef, mem.NilRef, l.GuardTrip("harris", "find", steps, restarts)
		}
		l.Phase(tid, ds.PhaseRead)
		pred, predNext, curr, predKey, pslot, st := l.search(tid, key, anchor, anchorKey, aslot, &steps)
		switch st {
		case stGuard:
			return mem.NilRef, mem.NilRef, l.GuardTrip("harris", "find", steps, restarts)
		case stCorrupt:
			return mem.NilRef, mem.NilRef, ds.ErrCorrupted
		case stRestart, stAnchor:
			rewind()
			continue
		}
		if predNext != curr {
			// Unlink the marked run between pred and curr.
			if !l.s.Reserve(tid, pred, curr) {
				rewind()
				continue
			}
			l.Phase(tid, ds.PhaseWrite)
			swapped, ok := l.s.CASPtr(tid, pred, ds.WNext, predNext, curr)
			if !ok {
				rewind()
				continue
			}
			if !swapped {
				resume(pred, predKey, pslot)
				continue
			}
		}
		// Validate that curr was not marked meanwhile (paper line 15/21).
		cn, ok := l.s.Read(tid, curr, ds.WNext)
		if !ok {
			rewind()
			continue
		}
		if mem.Ref(cn).Marked() {
			resume(pred, predKey, pslot)
			continue
		}
		if cu != nil {
			cu.pred, cu.key, cu.slot, cu.ok = pred, predKey, pslot, true
		}
		return pred, curr, nil
	}
}

// Contains implements ds.Set (paper lines 23-26).
func (l *List) Contains(tid int, key int64) (bool, error) {
	l.s.BeginOp(tid)
	defer l.s.EndOp(tid)
	return l.containsAt(tid, key, nil)
}

// containsAt is Contains without the bracket: the caller holds an open
// operation bracket for tid (per-op or a fused window).
func (l *List) containsAt(tid int, key int64, cu *cursor) (bool, error) {
	for retries := uint64(0); ; retries++ {
		if retries > maxSteps {
			return false, l.GuardTrip("harris", "contains", retries, retries)
		}
		_, curr, err := l.find(tid, key, cu)
		if err != nil {
			return false, err
		}
		cn, ok := l.s.Read(tid, curr, ds.WNext)
		if !ok {
			continue
		}
		ckey, ok := l.s.Read(tid, curr, ds.WKey)
		if !ok {
			continue
		}
		return !mem.Ref(cn).Marked() && int64(ckey) == key, nil
	}
}

// Insert implements ds.Set (paper lines 27-38).
func (l *List) Insert(tid int, key int64) (bool, error) {
	l.s.BeginOp(tid)
	defer l.s.EndOp(tid)
	return l.insertAt(tid, key, nil)
}

// insertAt is Insert without the bracket.
func (l *List) insertAt(tid int, key int64, cu *cursor) (bool, error) {
	n, err := l.s.Alloc(tid)
	if err != nil {
		return false, err
	}
	l.s.Write(tid, n, ds.WKey, uint64(key))
	for retries := uint64(0); ; retries++ {
		if retries > maxSteps {
			return false, l.GuardTrip("harris", "insert", retries, retries)
		}
		pred, curr, err := l.find(tid, key, cu)
		if err != nil {
			return false, err
		}
		ckey, ok := l.s.Read(tid, curr, ds.WKey)
		if !ok {
			continue
		}
		if int64(ckey) == key {
			l.s.Retire(tid, n) // paper line 34
			return false, nil
		}
		if !l.s.WritePtr(tid, n, ds.WNext, curr) { // paper line 36
			continue
		}
		if !l.s.Reserve(tid, pred, curr) {
			continue
		}
		l.Phase(tid, ds.PhaseWrite)
		if err := l.A.MarkShared(n); err != nil {
			return false, err
		}
		swapped, ok := l.s.CASPtr(tid, pred, ds.WNext, curr, n) // paper line 37
		if !ok {
			continue
		}
		if swapped {
			return true, nil
		}
	}
}

// Delete implements ds.Set (paper lines 39-53).
func (l *List) Delete(tid int, key int64) (bool, error) {
	l.s.BeginOp(tid)
	defer l.s.EndOp(tid)
	return l.deleteAt(tid, key, nil)
}

// deleteAt is Delete without the bracket.
func (l *List) deleteAt(tid int, key int64, cu *cursor) (bool, error) {
	for retries := uint64(0); ; retries++ {
		if retries > maxSteps {
			return false, l.GuardTrip("harris", "delete", retries, retries)
		}
		pred, curr, err := l.find(tid, key, cu)
		if err != nil {
			return false, err
		}
		ckey, ok := l.s.Read(tid, curr, ds.WKey)
		if !ok {
			continue
		}
		if int64(ckey) != key { // paper line 44
			return false, nil
		}
		cn, ok := l.s.ReadPtr(tid, 3, curr, ds.WNext) // paper line 46
		if !ok {
			continue
		}
		if cn.Marked() {
			continue // someone else is deleting curr; re-find
		}
		succ := cn
		if !l.s.Reserve(tid, pred, curr, succ.WithoutMark()) {
			continue
		}
		l.Phase(tid, ds.PhaseWrite)
		swapped, ok := l.s.CASPtr(tid, curr, ds.WNext, succ, succ.WithMark()) // paper line 48
		if !ok || !swapped {
			continue
		}
		l.Hit(tid, ds.PointDeleteMarked, uint64(key))
		// The delete is now linearized: curr is logically deleted and
		// this thread owns its retirement. Unlink it (paper line 50), or
		// let a search do it (line 51), then retire (line 52).
		if swapped, _ := l.s.CASPtr(tid, pred, ds.WNext, curr, succ); !swapped {
			if _, _, err := l.find(tid, key, cu); err != nil {
				return false, err
			}
		}
		l.s.Retire(tid, curr)
		return true, nil
	}
}

var (
	_ ds.Iterator = (*List)(nil)
	_ ds.BatchSet = (*List)(nil)
	_ ds.StepSet  = (*List)(nil)
)

// StepOp implements ds.StepSet: one unbracketed op under a
// caller-held bracket, without the cross-op predecessor cache.
func (l *List) StepOp(tid int, kind ds.BatchKind, key int64) (bool, error) {
	switch kind {
	case ds.BatchContains:
		return l.containsAt(tid, key, nil)
	case ds.BatchInsert:
		return l.insertAt(tid, key, nil)
	case ds.BatchDelete:
		return l.deleteAt(tid, key, nil)
	}
	return false, ds.ErrBadBatchOp
}

// ApplyBatch implements ds.BatchSet: one fused bracket window over the
// whole batch, carrying the validated-predecessor cursor across
// consecutive ops so a key-sorted batch walks the chain once. The
// cursor drops at every bracket renewal, and the stAnchor rule already
// guards against a cached pred going marked between ops.
func (l *List) ApplyBatch(tid int, ops []ds.BatchOp, res []ds.BatchResult) uint64 {
	w := smr.BeginOps(l.s, tid, 0)
	var cu cursor
	for i := range ops {
		if i > 0 && w.Step() {
			cu.ok = false
		}
		var ok bool
		var err error
		switch ops[i].Kind {
		case ds.BatchContains:
			ok, err = l.containsAt(tid, ops[i].Key, &cu)
		case ds.BatchInsert:
			ok, err = l.insertAt(tid, ops[i].Key, &cu)
		case ds.BatchDelete:
			ok, err = l.deleteAt(tid, ops[i].Key, &cu)
		default:
			err = ds.ErrBadBatchOp
		}
		res[i] = ds.BatchResult{OK: ok, Err: err}
	}
	w.EndOps()
	return w.Rebrackets()
}

// Iterate implements ds.Iterator: an ascending barrier-based scan that,
// like search, traverses through marked runs without unlinking them.
// Emission is monotonic (each chunk only reports keys greater than the
// last emitted one), so interference rewinds the walk but never the
// emission cursor — no key is reported twice, and a quiescent list is
// swept in one pass.
func (l *List) Iterate(tid int, fn func(key int64) bool) error {
	after := int64(ds.KeyMin)
	for {
		l.s.BeginOp(tid)
		done, err := l.iterChunk(tid, &after, fn)
		l.s.EndOp(tid)
		if done || err != nil {
			return err
		}
	}
}

// iterChunk emits up to iterBatch unmarked keys greater than *after inside
// one operation bracket; rollbacks rewind the walk to the head.
func (l *List) iterChunk(tid int, after *int64, fn func(key int64) bool) (done bool, err error) {
	var steps, restarts uint64
	defer func() { l.Trav.Record(steps, restarts, restarts) }()
	emitted := 0
	for {
		if steps++; steps > maxSteps {
			return false, l.GuardTrip("harris", "iterate", steps, restarts)
		}
		l.Phase(tid, ds.PhaseRead)
		sc := 1
		pn, ok := l.s.ReadPtr(tid, sc, l.head, ds.WNext)
		if !ok {
			restarts++
			continue
		}
		curr := pn.WithoutMark()
	walk:
		for {
			if steps++; steps > maxSteps {
				return false, l.GuardTrip("harris", "iterate", steps, restarts)
			}
			if curr.IsNil() {
				return false, ds.ErrCorrupted
			}
			sn := 3 - sc // alternate over {1, 2}: curr in sc, next in sn
			cn, ok := l.s.ReadPtr(tid, sn, curr, ds.WNext)
			if !ok {
				restarts++
				break walk
			}
			ckey, ok := l.s.Read(tid, curr, ds.WKey)
			if !ok {
				restarts++
				break walk
			}
			k := int64(ckey)
			if k == ds.KeyMax {
				return true, nil // tail sentinel: sweep complete
			}
			if !cn.Marked() && k > *after {
				*after = k
				if !fn(k) {
					return true, nil
				}
				if emitted++; emitted >= iterBatch {
					return false, nil // re-bracket before continuing
				}
			}
			curr = cn.WithoutMark()
			sc = sn
		}
	}
}

// Keys walks the list without barriers and returns the unmarked keys in
// order. It is only safe on a quiescent structure; tests use it to compare
// against a model.
func (l *List) Keys() []int64 {
	var keys []int64
	a := l.A
	cur, _ := a.Load(0, l.head, ds.WNext)
	for {
		r := mem.Ref(cur).WithoutMark()
		if r.IsNil() || r == l.tail {
			return keys
		}
		k, err := a.Load(0, r, ds.WKey)
		if err != nil {
			return keys
		}
		next, err := a.Load(0, r, ds.WNext)
		if err != nil {
			return keys
		}
		if !mem.Ref(next).Marked() {
			keys = append(keys, int64(k))
		}
		cur = next
	}
}
