// Package ds defines the abstract-data-type interfaces implemented by the
// repository's concurrent data structures, and the shared node layout and
// instrumentation helpers.
//
// Every structure is a *plain implementation* in the paper's sense
// (Section 4.2): the algorithm includes retire() calls at the points where
// nodes are detached, and all shared-memory accesses are expressed through
// the smr.Scheme barrier interface, so any reclamation scheme can be
// integrated without touching the algorithm.
package ds

import (
	"errors"
	"math"

	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/smr"
)

// Shared node layout: word 0 is the key (immutable once shared), word 1
// the next link. Structures with more links (the skip list) use words
// 1..n.
const (
	WKey  = 0
	WNext = 1
)

// Sentinel keys for list-based sets ("head and tail sentinels with the
// respective -inf and +inf keys").
const (
	KeyMin = math.MinInt64
	KeyMax = math.MaxInt64
)

// ErrCorrupted reports that a structure reached an impossible state —
// only ever observed when an unsafe scheme corrupted memory.
var ErrCorrupted = errors.New("ds: structure corrupted")

// Set is the integer-set object of Section 3 of the paper.
type Set interface {
	// Name identifies the implementation ("harris", "michael", ...).
	Name() string
	// Insert adds key; false if already present.
	Insert(tid int, key int64) (bool, error)
	// Delete removes key; false if absent.
	Delete(tid int, key int64) (bool, error)
	// Contains reports membership.
	Contains(tid int, key int64) (bool, error)
}

// Queue is a FIFO queue object.
type Queue interface {
	Name() string
	Enqueue(tid int, v int64) error
	// Dequeue returns (value, true) or (0, false) when empty.
	Dequeue(tid int) (int64, bool, error)
}

// Stack is a LIFO stack object.
type Stack interface {
	Name() string
	Push(tid int, v int64) error
	Pop(tid int) (int64, bool, error)
}

// Options carries cross-cutting instrumentation for a structure.
type Options struct {
	// Gate, when non-nil, receives Hit calls at named execution points
	// (the adversarial scheduler).
	Gate sched.Gate
	// Phases, when true and the arena traces, annotates read/write phase
	// boundaries into the trace for the access-aware verifier.
	Phases bool
}

// Named execution points (sched.Gate hits).
const (
	// PointSearchHead fires right after a search read the entry point's
	// next pointer; arg is the searched key. This is where Figure 1
	// stalls T1.
	PointSearchHead = "search:head"
	// PointSearchVisit fires at each unmarked node visited during a
	// search; arg is the node's key. This is where Figure 2 stalls T1.
	PointSearchVisit = "search:visit"
	// PointSearchVisitMarked fires at each marked node traversed
	// (Harris only); arg is the node's key.
	PointSearchVisitMarked = "search:visit-marked"
	// PointSearchStep fires at the top of each traversal step, before the
	// current node's next pointer is read; arg is the mem.Ref of the
	// current node (compare with Ref.SameNode). This is where Figure 2
	// stalls T1: it holds (and protects) a reference to node 15 but has
	// not yet read 15's next pointer.
	PointSearchStep = "search:step"
	// PointDeleteMarked fires right after a delete's successful marking
	// CAS, before the unlink attempt; arg is the victim's key. Figure 2
	// parks the two deleters here so both victims are marked before
	// either is unlinked.
	PointDeleteMarked = "delete:marked"
)

// Instr is the instrumentation half every structure embeds.
type Instr struct {
	Opt Options
	A   *mem.Arena
}

// Hit forwards to the gate when one is installed.
func (in *Instr) Hit(tid int, point string, arg uint64) {
	if in.Opt.Gate != nil {
		in.Opt.Gate.Hit(tid, point, arg)
	}
}

// Phase annotates a phase boundary into the access trace when enabled.
func (in *Instr) Phase(tid int, phase string) {
	if in.Opt.Phases && in.A.Tracer() != nil {
		in.A.Tracer().Annotate(tid, phase)
	}
}

// Phase annotation strings consumed by the access-aware verifier.
const (
	PhaseRead  = "phase:read"
	PhaseWrite = "phase:write"
)

// RegisterLinks tells link-tracking schemes (reference counting) which
// payload words hold references.
func RegisterLinks(s smr.Scheme, words []int) {
	if la, ok := s.(interface{ SetLinkWords([]int) }); ok {
		la.SetLinkWords(words)
	}
}

// NewSentinel allocates a never-retired node (entry point) with the given
// key, outside any operation bracket.
func NewSentinel(s smr.Scheme, tid int, key int64) (mem.Ref, error) {
	r, err := s.Alloc(tid)
	if err != nil {
		return mem.NilRef, err
	}
	if !s.Write(tid, r, WKey, uint64(key)) {
		return mem.NilRef, ErrCorrupted
	}
	if err := s.Heap().MarkShared(r); err != nil {
		return mem.NilRef, err
	}
	return r, nil
}
