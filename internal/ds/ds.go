// Package ds defines the abstract-data-type interfaces implemented by the
// repository's concurrent data structures, and the shared node layout and
// instrumentation helpers.
//
// Every structure is a *plain implementation* in the paper's sense
// (Section 4.2): the algorithm includes retire() calls at the points where
// nodes are detached, and all shared-memory accesses are expressed through
// the smr.Scheme barrier interface, so any reclamation scheme can be
// integrated without touching the algorithm.
package ds

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/smr"
)

// Shared node layout: word 0 is the key (immutable once shared), word 1
// the next link. Structures with more links (the skip list) use words
// 1..n.
const (
	WKey  = 0
	WNext = 1
)

// Sentinel keys for list-based sets ("head and tail sentinels with the
// respective -inf and +inf keys").
const (
	KeyMin = math.MinInt64
	KeyMax = math.MaxInt64
)

// ErrCorrupted reports that a structure reached an impossible state —
// only ever observed when an unsafe scheme corrupted memory.
var ErrCorrupted = errors.New("ds: structure corrupted")

// ErrTraversalGuard reports that one operation exhausted its traversal
// step budget. Before the bounded-restart overhaul this condition was a
// silent near-stall — the op burned toward maxSteps restarting from the
// head, pinning its reclamation epoch for the whole walk (ROADMAP item
// 5); now it surfaces as a typed, counted error. Guard errors also match
// ErrCorrupted under errors.Is, so callers that already escalate
// corruption escalate guard trips too.
var ErrTraversalGuard = errors.New("ds: traversal step budget exhausted")

// GuardError is the typed maxSteps-exhaustion error: which structure and
// operation tripped the guard, and the traversal counters at the trip.
type GuardError struct {
	Structure string
	Op        string
	Steps     uint64
	Restarts  uint64
}

func (e *GuardError) Error() string {
	return fmt.Sprintf("ds: %s.%s traversal step budget exhausted (%d steps, %d restarts)",
		e.Structure, e.Op, e.Steps, e.Restarts)
}

// Is matches both the guard sentinel and ErrCorrupted: a tripped guard is
// the structure declaring it cannot make progress, which every existing
// caller treats as corruption-grade.
func (e *GuardError) Is(target error) bool {
	return target == ErrTraversalGuard || target == ErrCorrupted
}

// Set is the integer-set object of Section 3 of the paper.
type Set interface {
	// Name identifies the implementation ("harris", "michael", ...).
	Name() string
	// Insert adds key; false if already present.
	Insert(tid int, key int64) (bool, error)
	// Delete removes key; false if absent.
	Delete(tid int, key int64) (bool, error)
	// Contains reports membership.
	Contains(tid int, key int64) (bool, error)
}

// Iterator is the snapshot contract of the traversal overhaul: services
// read a structure's live contents in O(live keys) by scanning the
// structure itself, instead of probing a key universe through Contains.
//
// Iterate calls fn for each key until fn returns false or the scan
// completes. The contract, shared by every implementation and verified by
// the dstest suite:
//
//   - Every key that is continuously present for the whole call is
//     reported exactly once. On a quiescent structure that makes the scan
//     a single exact sweep — the fast path.
//   - No key is ever reported twice, even under concurrent mutation:
//     emission is monotonic per region (globally ascending for ordered
//     structures, per-bucket for partitioned ones), and interference makes
//     the scan resume from the last emitted key, never rewind — the
//     concurrent fallback.
//   - Keys inserted or deleted during the call may or may not be reported.
//
// Iterate runs inside the scheme's operation brackets on the caller's tid
// (which must not be running another operation), re-bracketing in batches
// so a long scan never pins a reclamation epoch for the whole structure.
type Iterator interface {
	Iterate(tid int, fn func(key int64) bool) error
}

// TravReporter exposes a structure's traversal counters. Every structure
// embedding Instr implements it; partitioned structures merge their
// buckets' counters.
type TravReporter interface {
	TravSnapshot() TravSnapshot
}

// Queue is a FIFO queue object.
type Queue interface {
	Name() string
	Enqueue(tid int, v int64) error
	// Dequeue returns (value, true) or (0, false) when empty.
	Dequeue(tid int) (int64, bool, error)
}

// Stack is a LIFO stack object.
type Stack interface {
	Name() string
	Push(tid int, v int64) error
	Pop(tid int) (int64, bool, error)
}

// Options carries cross-cutting instrumentation for a structure.
type Options struct {
	// Gate, when non-nil, receives Hit calls at named execution points
	// (the adversarial scheduler).
	Gate sched.Gate
	// Phases, when true and the arena traces, annotates read/write phase
	// boundaries into the trace for the access-aware verifier.
	Phases bool
	// HeadRestart restores the pre-overhaul traversal behavior: every
	// contention restart rewinds to the structure's entry point instead of
	// resuming from the validated cached pred. It exists as the baseline
	// arm of EXP-TRAVERSE and for bisecting traversal regressions; leave
	// it false in production configurations.
	HeadRestart bool
	// OnGuardTrip, when non-nil, receives every step-budget exhaustion
	// right after it is counted — the observability plane's flight
	// recorder hook. Called on the tripping operation's goroutine; must
	// be cheap and non-blocking.
	OnGuardTrip func(structure, op string, steps, restarts uint64)
}

// Named execution points (sched.Gate hits).
const (
	// PointSearchHead fires right after a search read the entry point's
	// next pointer; arg is the searched key. This is where Figure 1
	// stalls T1.
	PointSearchHead = "search:head"
	// PointSearchVisit fires at each unmarked node visited during a
	// search; arg is the node's key. This is where Figure 2 stalls T1.
	PointSearchVisit = "search:visit"
	// PointSearchVisitMarked fires at each marked node traversed
	// (Harris only); arg is the node's key.
	PointSearchVisitMarked = "search:visit-marked"
	// PointSearchStep fires at the top of each traversal step, before the
	// current node's next pointer is read; arg is the mem.Ref of the
	// current node (compare with Ref.SameNode). This is where Figure 2
	// stalls T1: it holds (and protects) a reference to node 15 but has
	// not yet read 15's next pointer.
	PointSearchStep = "search:step"
	// PointDeleteMarked fires right after a delete's successful marking
	// CAS, before the unlink attempt; arg is the victim's key. Figure 2
	// parks the two deleters here so both victims are marked before
	// either is unlinked.
	PointDeleteMarked = "delete:marked"
)

// TravStats is the per-structure traversal counter block: total steps
// (node visits), restarts split into bounded (resume-from-pred) and head
// rewinds, guard trips, and the worst single-operation step count. All
// fields are atomics; operations accumulate locally and fold in once per
// traversal, so the hot path stays off shared cache lines.
type TravStats struct {
	Steps        atomic.Uint64
	Restarts     atomic.Uint64
	HeadRestarts atomic.Uint64
	GuardTrips   atomic.Uint64
	MaxOpSteps   atomic.Uint64
}

// Record folds one traversal's local counters into the shared block.
func (t *TravStats) Record(steps, restarts, headRestarts uint64) {
	if steps != 0 {
		t.Steps.Add(steps)
	}
	if restarts != 0 {
		t.Restarts.Add(restarts)
	}
	if headRestarts != 0 {
		t.HeadRestarts.Add(headRestarts)
	}
	for {
		cur := t.MaxOpSteps.Load()
		if steps <= cur || t.MaxOpSteps.CompareAndSwap(cur, steps) {
			return
		}
	}
}

// TravSnapshot is a point-in-time copy of TravStats.
type TravSnapshot struct {
	Steps        uint64 `json:"steps"`
	Restarts     uint64 `json:"restarts"`
	HeadRestarts uint64 `json:"head_restarts"`
	GuardTrips   uint64 `json:"guard_trips"`
	MaxOpSteps   uint64 `json:"max_op_steps"`
}

// Snapshot copies the counters.
func (t *TravStats) Snapshot() TravSnapshot {
	return TravSnapshot{
		Steps:        t.Steps.Load(),
		Restarts:     t.Restarts.Load(),
		HeadRestarts: t.HeadRestarts.Load(),
		GuardTrips:   t.GuardTrips.Load(),
		MaxOpSteps:   t.MaxOpSteps.Load(),
	}
}

// Merge combines two snapshots (sums, max of maxes) — how partitioned
// structures aggregate their buckets.
func (s TravSnapshot) Merge(o TravSnapshot) TravSnapshot {
	s.Steps += o.Steps
	s.Restarts += o.Restarts
	s.HeadRestarts += o.HeadRestarts
	s.GuardTrips += o.GuardTrips
	if o.MaxOpSteps > s.MaxOpSteps {
		s.MaxOpSteps = o.MaxOpSteps
	}
	return s
}

// Instr is the instrumentation half every structure embeds.
type Instr struct {
	Opt  Options
	A    *mem.Arena
	Trav TravStats
}

// TravSnapshot implements TravReporter for every embedding structure.
func (in *Instr) TravSnapshot() TravSnapshot { return in.Trav.Snapshot() }

// GuardTrip counts a step-budget exhaustion and builds its typed error.
func (in *Instr) GuardTrip(structure, op string, steps, restarts uint64) error {
	in.Trav.GuardTrips.Add(1)
	if in.Opt.OnGuardTrip != nil {
		in.Opt.OnGuardTrip(structure, op, steps, restarts)
	}
	return &GuardError{Structure: structure, Op: op, Steps: steps, Restarts: restarts}
}

// Hit forwards to the gate when one is installed.
func (in *Instr) Hit(tid int, point string, arg uint64) {
	if in.Opt.Gate != nil {
		in.Opt.Gate.Hit(tid, point, arg)
	}
}

// Phase annotates a phase boundary into the access trace when enabled.
func (in *Instr) Phase(tid int, phase string) {
	if in.Opt.Phases && in.A.Tracer() != nil {
		in.A.Tracer().Annotate(tid, phase)
	}
}

// Phase annotation strings consumed by the access-aware verifier.
const (
	PhaseRead  = "phase:read"
	PhaseWrite = "phase:write"
)

// RegisterLinks tells link-tracking schemes (reference counting) which
// payload words hold references.
func RegisterLinks(s smr.Scheme, words []int) {
	if la, ok := s.(interface{ SetLinkWords([]int) }); ok {
		la.SetLinkWords(words)
	}
}

// NewSentinel allocates a never-retired node (entry point) with the given
// key, outside any operation bracket.
func NewSentinel(s smr.Scheme, tid int, key int64) (mem.Ref, error) {
	r, err := s.Alloc(tid)
	if err != nil {
		return mem.NilRef, err
	}
	if !s.Write(tid, r, WKey, uint64(key)) {
		return mem.NilRef, ErrCorrupted
	}
	if err := s.Heap().MarkShared(r); err != nil {
		return mem.NilRef, err
	}
	return r, nil
}
