// Package treiber implements the Treiber lock-free stack.
//
// The stack is the smallest structure in the applicability experiments:
// one entry point (Top, kept in a never-retired anchor node), retirement
// by the successful popper, no traversal of retired nodes. It is the
// classic setting where immediate free is unsafe (the popped node may be
// read by a concurrent pop that already loaded Top) and where every real
// scheme, including HP, is applicable.
package treiber

import (
	"repro/internal/ds"
	"repro/internal/mem"
	"repro/internal/smr"
)

const (
	wTop  = 0 // anchor word
	wVal  = 0
	wNext = 1
)

// Stack is the Treiber stack.
type Stack struct {
	ds.Instr
	s      smr.Scheme
	anchor mem.Ref
}

var _ ds.Stack = (*Stack)(nil)

// New builds an empty stack over scheme s.
func New(s smr.Scheme, opt ds.Options) (*Stack, error) {
	st := &Stack{Instr: ds.Instr{Opt: opt, A: s.Heap()}, s: s}
	ds.RegisterLinks(s, []int{wNext})
	anchor, err := ds.NewSentinel(s, 0, 0)
	if err != nil {
		return nil, err
	}
	st.anchor = anchor
	return st, nil
}

// Name implements ds.Stack.
func (st *Stack) Name() string { return "treiber" }

const maxAttempts = 1 << 22

// Push implements ds.Stack.
func (st *Stack) Push(tid int, v int64) error {
	st.s.BeginOp(tid)
	defer st.s.EndOp(tid)
	n, err := st.s.Alloc(tid)
	if err != nil {
		return err
	}
	st.s.Write(tid, n, wVal, uint64(v))
	if err := st.A.MarkShared(n); err != nil {
		return err
	}
	for i := 0; i < maxAttempts; i++ {
		st.Phase(tid, ds.PhaseRead)
		top, ok := st.s.ReadPtr(tid, 0, st.anchor, wTop)
		if !ok {
			continue
		}
		if !st.s.WritePtr(tid, n, wNext, top) {
			continue
		}
		if !st.s.Reserve(tid) {
			continue
		}
		st.Phase(tid, ds.PhaseWrite)
		swapped, ok := st.s.CASPtr(tid, st.anchor, wTop, top, n)
		if !ok || !swapped {
			continue
		}
		return nil
	}
	return ds.ErrCorrupted
}

// Pop implements ds.Stack; the popper retires the popped node.
func (st *Stack) Pop(tid int) (int64, bool, error) {
	st.s.BeginOp(tid)
	defer st.s.EndOp(tid)
	for i := 0; i < maxAttempts; i++ {
		st.Phase(tid, ds.PhaseRead)
		top, ok := st.s.ReadPtr(tid, 0, st.anchor, wTop)
		if !ok {
			continue
		}
		if top.IsNil() {
			return 0, false, nil
		}
		next, ok := st.s.ReadPtr(tid, 1, top, wNext)
		if !ok {
			continue
		}
		v, ok := st.s.Read(tid, top, wVal)
		if !ok {
			continue
		}
		if !st.s.Reserve(tid, top) {
			continue
		}
		st.Phase(tid, ds.PhaseWrite)
		swapped, ok := st.s.CASPtr(tid, st.anchor, wTop, top, next)
		if !ok || !swapped {
			continue
		}
		st.s.Retire(tid, top)
		return int64(v), true, nil
	}
	return 0, false, ds.ErrCorrupted
}

// Snapshot returns the stack contents top-first without barriers;
// quiescent use only.
func (st *Stack) Snapshot() []int64 {
	var vals []int64
	a := st.A
	cur, _ := a.Load(0, st.anchor, wTop)
	for !mem.Ref(cur).IsNil() {
		r := mem.Ref(cur)
		v, err := a.Load(0, r, wVal)
		if err != nil {
			return vals
		}
		vals = append(vals, int64(v))
		next, err := a.Load(0, r, wNext)
		if err != nil {
			return vals
		}
		cur = next
	}
	return vals
}
