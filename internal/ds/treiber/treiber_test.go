package treiber_test

import (
	"sync"
	"testing"

	"repro/internal/ds"
	"repro/internal/ds/dstest"
	"repro/internal/ds/treiber"
	"repro/internal/mem"
)

func TestSuite(t *testing.T) { dstest.RunStackSuite(t, "treiber") }

// TestConservation checks that every pushed value is popped exactly once
// under full concurrency (4 pushers, 4 poppers).
func TestConservation(t *testing.T) {
	env := dstest.NewEnv(t, "hp", 8, 1<<15, 2, mem.Reuse)
	st, err := treiber.New(env.S, ds.Options{})
	if err != nil {
		t.Fatal(err)
	}
	const perThread = 2000
	var wg sync.WaitGroup
	popped := make([][]int64, 4)
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < perThread; i++ {
				v := int64(tid*perThread + i)
				if err := st.Push(tid, v); err != nil {
					t.Errorf("push: %v", err)
					return
				}
			}
		}(p)
	}
	var remaining sync.WaitGroup
	for p := 0; p < 4; p++ {
		remaining.Add(1)
		go func(tid int) {
			defer remaining.Done()
			var got []int64
			misses := 0
			for len(got) < perThread && misses < 1<<22 {
				v, ok, err := st.Pop(4 + tid)
				if err != nil {
					t.Errorf("pop: %v", err)
					return
				}
				if !ok {
					misses++
					continue
				}
				got = append(got, v)
			}
			popped[tid] = got
		}(p)
	}
	wg.Wait()
	remaining.Wait()
	if t.Failed() {
		return
	}
	seen := make(map[int64]bool, 4*perThread)
	for _, got := range popped {
		for _, v := range got {
			if seen[v] {
				t.Fatalf("value %d popped twice", v)
			}
			seen[v] = true
		}
	}
	if len(seen) != 4*perThread {
		t.Fatalf("popped %d distinct values, want %d", len(seen), 4*perThread)
	}
	env.AssertSafe(t)
}
