// Package registry enumerates the repository's data-structure
// implementations behind by-name factories, so the applicability harness,
// the benchmarks and the tests can sweep scheme × structure uniformly.
package registry

import (
	"fmt"
	"sort"

	"repro/internal/ds"
	"repro/internal/ds/harris"
	"repro/internal/ds/hashmap"
	"repro/internal/ds/michael"
	"repro/internal/ds/msqueue"
	"repro/internal/ds/nmtree"
	"repro/internal/ds/skiplist"
	"repro/internal/ds/treiber"
	"repro/internal/smr"
)

// Kind is the abstract data type a structure implements.
type Kind uint8

// Structure kinds.
const (
	KindSet Kind = iota
	KindQueue
	KindStack
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindQueue:
		return "queue"
	case KindStack:
		return "stack"
	}
	return "set"
}

// MaxPayloadWords is the largest payload-word requirement across all
// structures; arenas sized with it can host any structure.
const MaxPayloadWords = skiplist.PayloadWords

// Info describes one registered structure implementation.
type Info struct {
	// Name is the registry key ("harris", "msqueue", ...).
	Name string
	// Kind is the abstract data type.
	Kind Kind
	// PayloadWords is the minimum arena payload size the structure needs.
	PayloadWords int
	// TraversesRetired reports that searches may traverse logically
	// deleted (and possibly retired) nodes — the property that defeats
	// per-pointer protection schemes (Appendix E of the paper).
	TraversesRetired bool
	// Partitioned reports that searches visit only a hash partition of
	// the key space (the hashmaps): scripted adversaries that assume one
	// key lies on another key's search path cannot target such a
	// structure, so structure sweeps built on those scripts skip it.
	Partitioned bool
	// NewSet/NewQueue/NewStack is non-nil per Kind.
	NewSet   func(s smr.Scheme, opt ds.Options) (ds.Set, error)
	NewQueue func(s smr.Scheme, opt ds.Options) (ds.Queue, error)
	NewStack func(s smr.Scheme, opt ds.Options) (ds.Stack, error)
}

var infos = map[string]Info{
	"harris": {
		Name: "harris", Kind: KindSet, PayloadWords: 2, TraversesRetired: true,
		NewSet: func(s smr.Scheme, opt ds.Options) (ds.Set, error) { return harris.New(s, opt) },
	},
	"michael": {
		Name: "michael", Kind: KindSet, PayloadWords: 2,
		NewSet: func(s smr.Scheme, opt ds.Options) (ds.Set, error) { return michael.New(s, opt) },
	},
	"skiplist": {
		Name: "skiplist", Kind: KindSet, PayloadWords: skiplist.PayloadWords, TraversesRetired: true,
		NewSet: func(s smr.Scheme, opt ds.Options) (ds.Set, error) { return skiplist.New(s, opt) },
	},
	"hashmap-harris": {
		Name: "hashmap-harris", Kind: KindSet, PayloadWords: 2, TraversesRetired: true, Partitioned: true,
		NewSet: func(s smr.Scheme, opt ds.Options) (ds.Set, error) { return hashmap.New(s, opt, 16, "harris") },
	},
	"hashmap-michael": {
		Name: "hashmap-michael", Kind: KindSet, PayloadWords: 2, Partitioned: true,
		NewSet: func(s smr.Scheme, opt ds.Options) (ds.Set, error) { return hashmap.New(s, opt, 16, "michael") },
	},
	"nmtree": {
		Name: "nmtree", Kind: KindSet, PayloadWords: nmtree.PayloadWords, TraversesRetired: true,
		NewSet: func(s smr.Scheme, opt ds.Options) (ds.Set, error) { return nmtree.New(s, opt) },
	},
	"msqueue": {
		Name: "msqueue", Kind: KindQueue, PayloadWords: 2,
		NewQueue: func(s smr.Scheme, opt ds.Options) (ds.Queue, error) { return msqueue.New(s, opt) },
	},
	"treiber": {
		Name: "treiber", Kind: KindStack, PayloadWords: 2,
		NewStack: func(s smr.Scheme, opt ds.Options) (ds.Stack, error) { return treiber.New(s, opt) },
	},
}

// aliases maps convenience names to registry entries. "hashmap" selects
// the HP-compatible variant so the widest scheme set applies.
var aliases = map[string]string{
	"hashmap": "hashmap-michael",
}

// Names returns every registered structure name, sorted.
func Names() []string {
	names := make([]string, 0, len(infos))
	for n := range infos {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SetNames returns the names of the set structures, sorted.
func SetNames() []string {
	var names []string
	for _, n := range Names() {
		if infos[n].Kind == KindSet {
			names = append(names, n)
		}
	}
	return names
}

// TraversalSetNames returns, sorted, the set structures whose searches
// traverse the full key order (not hash-partitioned) and may cross
// retired nodes — the structures the paper's §6 discussion asks about,
// and the ones the scripted stall adversaries can target. Experiment
// sweeps iterate this listing instead of hand-maintained slices so their
// report ordering is stable and new structures join automatically.
func TraversalSetNames() []string {
	var names []string
	for _, n := range SetNames() {
		if in := infos[n]; in.TraversesRetired && !in.Partitioned {
			names = append(names, n)
		}
	}
	return names
}

// Get returns the named structure's Info. Aliases resolve to their
// target entry (the returned Info carries the canonical name).
func Get(name string) (Info, error) {
	if target, ok := aliases[name]; ok {
		name = target
	}
	in, ok := infos[name]
	if !ok {
		return Info{}, fmt.Errorf("registry: unknown structure %q (have %v)", name, Names())
	}
	return in, nil
}

// MustGet is Get for static names.
func MustGet(name string) Info {
	in, err := Get(name)
	if err != nil {
		panic(err)
	}
	return in
}

// Applicable reports whether the named scheme is expected to be applicable
// to the named structure, per the paper's analysis: per-pointer protection
// schemes (HP, IBR, HE) are not applicable to structures whose searches
// traverse retired nodes (Appendix E); everything else is.
func Applicable(scheme string, structure string) bool {
	in, err := Get(structure)
	if err != nil {
		return false
	}
	if !in.TraversesRetired {
		return true
	}
	switch scheme {
	case "hp", "ibr", "he":
		// The protect-and-validate idiom re-reads the *source* pointer;
		// a stable source does not imply the target still lives when
		// traversals cross retired nodes (Appendix E).
		return false
	}
	// rc stays applicable: its pin is on the *target* (increment the
	// count, then validate the target itself), and a held node's link
	// counts pin the rest of the retired run — at the price of
	// non-robustness (the pinned chain is unbounded, see the adversary
	// outcomes).
	return true
}
