package registry_test

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/ds"
	"repro/internal/ds/dstest"
	"repro/internal/ds/registry"
	"repro/internal/mem"
	"repro/internal/smr/all"
)

// TestEverySchemeConstructsEveryStructure: construction must succeed for
// every (scheme, structure) pair — even the non-applicable ones, whose
// failure mode is unsafe behaviour at runtime (exercised by the adversary
// executions), never a constructor error.
func TestEverySchemeConstructsEveryStructure(t *testing.T) {
	for _, structure := range registry.Names() {
		info := registry.MustGet(structure)
		for _, scheme := range all.Names() {
			env := dstest.NewEnv(t, scheme, 2, 1<<10, info.PayloadWords, mem.Reuse)
			var err error
			switch info.Kind {
			case registry.KindSet:
				_, err = info.NewSet(env.S, ds.Options{})
			case registry.KindQueue:
				_, err = info.NewQueue(env.S, ds.Options{})
			case registry.KindStack:
				_, err = info.NewStack(env.S, ds.Options{})
			}
			if err != nil {
				t.Errorf("%s × %s: construction failed: %v", scheme, structure, err)
			}
		}
	}
}

// TestRegistrySmoke: every structure passes a short sequential dstest pass
// under every applicable safe scheme.
func TestRegistrySmoke(t *testing.T) {
	for _, structure := range registry.Names() {
		info := registry.MustGet(structure)
		for _, scheme := range all.SafeNames() {
			if !registry.Applicable(scheme, structure) {
				continue
			}
			t.Run(structure+"/"+scheme, func(t *testing.T) {
				env := dstest.NewEnv(t, scheme, 1, 1<<12, info.PayloadWords, mem.Reuse)
				switch info.Kind {
				case registry.KindSet:
					set, err := info.NewSet(env.S, ds.Options{})
					if err != nil {
						t.Fatal(err)
					}
					dstest.SequentialSet(t, set, 32, 600)
				case registry.KindQueue:
					q, err := info.NewQueue(env.S, ds.Options{})
					if err != nil {
						t.Fatal(err)
					}
					dstest.SequentialQueue(t, q, 600)
				case registry.KindStack:
					st, err := info.NewStack(env.S, ds.Options{})
					if err != nil {
						t.Fatal(err)
					}
					dstest.SequentialStack(t, st, 600)
				}
				env.AssertSafe(t)
			})
		}
	}
}

// TestInfoConsistency: every Info carries exactly the factory its Kind
// promises, a payload size an arena can host, and a name matching its key.
func TestInfoConsistency(t *testing.T) {
	for _, name := range registry.Names() {
		info := registry.MustGet(name)
		if info.Name != name {
			t.Errorf("%s: Info.Name = %q", name, info.Name)
		}
		if info.PayloadWords < 2 || info.PayloadWords > registry.MaxPayloadWords {
			t.Errorf("%s: PayloadWords = %d outside [2, %d]", name, info.PayloadWords, registry.MaxPayloadWords)
		}
		set, queue, stack := info.NewSet != nil, info.NewQueue != nil, info.NewStack != nil
		switch info.Kind {
		case registry.KindSet:
			if !set || queue || stack {
				t.Errorf("%s: set kind with factories set=%v queue=%v stack=%v", name, set, queue, stack)
			}
		case registry.KindQueue:
			if set || !queue || stack {
				t.Errorf("%s: queue kind with wrong factories", name)
			}
		case registry.KindStack:
			if set || queue || !stack {
				t.Errorf("%s: stack kind with wrong factories", name)
			}
		}
	}
}

// TestGetUnknown: unknown names report the available structures.
func TestGetUnknown(t *testing.T) {
	if _, err := registry.Get("nosuch"); err == nil {
		t.Error("unknown structure must error")
	}
	if registry.Applicable("ebr", "nosuch") {
		t.Error("unknown structure cannot be applicable")
	}
}

// TestApplicabilityClassification pins the paper's Appendix E analysis:
// per-pointer protection schemes are not applicable to structures whose
// searches traverse retired nodes.
func TestApplicabilityClassification(t *testing.T) {
	for _, scheme := range []string{"hp", "ibr", "he"} {
		if registry.Applicable(scheme, "harris") {
			t.Errorf("%s must not be applicable to harris", scheme)
		}
		if !registry.Applicable(scheme, "michael") {
			t.Errorf("%s must be applicable to michael", scheme)
		}
	}
	for _, scheme := range []string{"ebr", "vbr", "nbr", "rc"} {
		if !registry.Applicable(scheme, "harris") {
			t.Errorf("%s must be applicable to harris", scheme)
		}
	}
}

// TestListingsDeterministic pins the ordering contract experiment tables
// rely on: every listing is sorted, stable across calls, and the
// traversal subset holds exactly the full-order traversal structures.
func TestListingsDeterministic(t *testing.T) {
	for name, list := range map[string][]string{
		"Names":             registry.Names(),
		"SetNames":          registry.SetNames(),
		"TraversalSetNames": registry.TraversalSetNames(),
	} {
		if !sort.StringsAreSorted(list) {
			t.Errorf("%s not sorted: %v", name, list)
		}
	}
	if again := registry.Names(); !reflect.DeepEqual(again, registry.Names()) {
		t.Error("Names unstable across calls")
	}
	want := []string{"harris", "nmtree", "skiplist"}
	if got := registry.TraversalSetNames(); !reflect.DeepEqual(got, want) {
		t.Errorf("TraversalSetNames = %v, want %v", got, want)
	}
	// The hashmaps are set structures but hash-partitioned: they must be
	// in SetNames and out of the traversal listing.
	sets := registry.SetNames()
	has := func(s string) bool {
		for _, n := range sets {
			if n == s {
				return true
			}
		}
		return false
	}
	if !has("hashmap-harris") || !has("hashmap-michael") {
		t.Errorf("SetNames lost the hashmaps: %v", sets)
	}
}
