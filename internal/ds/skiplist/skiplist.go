// Package skiplist implements a lock-free skip list set in the style of
// Fraser and Herlihy & Shavit (The Art of Multiprocessor Programming,
// chapter 14.4), expressed over the smr.Scheme barrier interface.
//
// The skip list matters to the paper's Section 5.1 discussion: the number
// of hazard pointers a traversal must hold is not a structure-independent
// constant — it grows with the tower height, i.e. with the logarithm of the
// data-structure size. This package keeps the height fixed (MaxHeight) so
// per-pointer schemes have a well-defined slot budget, but the protection
// rotation per level is still visible in the ReadPtr idx discipline.
//
// retire() placement: the thread whose CAS marks level 0 of a victim owns
// the deletion; it re-runs find, which physically snips the victim from
// every level it is still linked at, and only then retires it — nodes are
// always unreachable before they are retired (Section 4.1 of the paper).
package skiplist

import (
	"fmt"

	"repro/internal/ds"
	"repro/internal/mem"
	"repro/internal/smr"
)

// MaxHeight is the fixed tower-height cap. 12 levels comfortably cover the
// heap sizes the experiments use (2^12 expected nodes per top-level link).
const MaxHeight = 12

// Node payload layout: word 0 key, word 1 tower height, words 2..2+h-1 the
// per-level next references (level 0 at WLevel0).
const (
	WHeight = 1
	WLevel0 = 2
	// PayloadWords is the arena payload size this structure requires.
	PayloadWords = WLevel0 + MaxHeight
)

// List is the lock-free skip list set.
type List struct {
	ds.Instr
	s          smr.Scheme
	head, tail mem.Ref
}

var _ ds.Set = (*List)(nil)

// New builds an empty skip list over scheme s. Sentinels are full-height.
func New(s smr.Scheme, opt ds.Options) (*List, error) {
	if s.Heap().Config().PayloadWords < PayloadWords {
		return nil, ds.ErrCorrupted
	}
	l := &List{Instr: ds.Instr{Opt: opt, A: s.Heap()}, s: s}
	links := make([]int, MaxHeight)
	for i := range links {
		links[i] = WLevel0 + i
	}
	ds.RegisterLinks(s, links)
	var err error
	if l.tail, err = ds.NewSentinel(s, 0, ds.KeyMax); err != nil {
		return nil, err
	}
	if !s.Write(0, l.tail, WHeight, MaxHeight) {
		return nil, ds.ErrCorrupted
	}
	if l.head, err = ds.NewSentinel(s, 0, ds.KeyMin); err != nil {
		return nil, err
	}
	if !s.Write(0, l.head, WHeight, MaxHeight) {
		return nil, ds.ErrCorrupted
	}
	for lv := 0; lv < MaxHeight; lv++ {
		if !s.WritePtr(0, l.head, WLevel0+lv, l.tail) {
			return nil, ds.ErrCorrupted
		}
	}
	return l, nil
}

// Name implements ds.Set.
func (l *List) Name() string { return "skiplist" }

// Head returns the head sentinel.
func (l *List) Head() mem.Ref { return l.head }

const maxSteps = 1 << 22

// iterBatch bounds how many keys one Iterate operation bracket emits.
const iterBatch = 512

type status uint8

const (
	stOK status = iota
	stRestart
	// stCorrupt variants name the detection site for diagnostics.
	stCorruptRetry // outer retry loop exceeded maxSteps
	stCorruptWalk  // a level walk exceeded maxSteps (cycle)
	stCorruptNil   // a level edge dereferenced to nil
)

func corrupt(st status) bool { return st >= stCorruptRetry }

// corruptErr maps a corrupt status to its error: the step-budget variants
// are typed, counted guard trips (the structure declaring it cannot make
// progress), a nil edge is detected corruption.
func (l *List) corruptErr(op string, st status, steps, restarts uint64) error {
	switch st {
	case stCorruptRetry, stCorruptWalk:
		return l.GuardTrip("skiplist", op, steps, restarts)
	}
	return fmt.Errorf("%w: nil level edge", ds.ErrCorrupted)
}

// randomHeight draws a geometric tower height from a key-and-thread seeded
// xorshift, so runs are reproducible without a global RNG.
func randomHeight(tid int, key int64) int {
	x := uint64(key)*0x9e3779b97f4a7c15 + uint64(tid)*0xbf58476d1ce4e5b9 + 1
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	h := 1
	for x&1 == 1 && h < MaxHeight {
		h++
		x >>= 1
	}
	return h
}

// find locates the window for key on every level: preds[l] is the last
// node with key < key at level l, succs[l] the first with key >= key.
// Marked nodes encountered on the way are physically snipped (this is the
// only place unlinking happens). found reports an unmarked level-0 match.
// maxNilRetries bounds restarts on a momentarily-nil level edge. The
// simulated wide CAS undoes stale link installs after the fact (see
// DESIGN.md, limitation 5); a reader can glimpse the in-flight state as a
// nil edge. Such glimpses are transient — a bounded number of restarts
// absorbs them, and persistence still escalates to detected corruption.
const maxNilRetries = 1 << 14

// Restart policy (the bounded-restart overhaul): losing a snip CAS no
// longer redescends the whole tower from the head — the walk re-reads
// pred's edge at the contended level and, when pred is still unmarked
// there, resumes the level walk from pred. Rollbacks and nil glimpses
// still rewind completely.
func (l *List) find(tid int, key int64, preds, succs *[MaxHeight]mem.Ref) (found bool, st status, steps, restarts uint64) {
	var headRestarts uint64
	defer func() { l.Trav.Record(steps, restarts, headRestarts) }()
	nilRetries := 0
retry:
	for retries := 0; ; retries++ {
		if retries > 0 {
			restarts++
			headRestarts++
		}
		if retries > maxSteps || steps > maxSteps {
			return false, stCorruptRetry, steps, restarts
		}
		pred := l.head
		// Protection slots: 0 for pred, 1 for curr, 2 for succ, rotating
		// as the traversal advances.
		for lv := MaxHeight - 1; lv >= 0; lv-- {
			curr, ok := l.s.ReadPtr(tid, 1, pred, WLevel0+lv)
			if !ok {
				return false, stRestart, steps, restarts
			}
			if lv == MaxHeight-1 {
				l.Hit(tid, ds.PointSearchHead, uint64(key))
			}
			curr = curr.WithoutMark()
		walk:
			for inner := 0; ; inner++ {
				if steps++; inner > maxSteps {
					return false, stCorruptWalk, steps, restarts
				}
				if curr.IsNil() {
					if nilRetries++; nilRetries > maxNilRetries {
						return false, stCorruptNil, steps, restarts
					}
					continue retry
				}
				succ, ok := l.s.ReadPtr(tid, 2, curr, WLevel0+lv)
				if !ok {
					return false, stRestart, steps, restarts
				}
				for succ.Marked() {
					// curr is logically deleted at this level: snip it.
					swapped, ok := l.s.CASPtr(tid, pred, WLevel0+lv, curr, succ.WithoutMark())
					if !ok {
						return false, stRestart, steps, restarts
					}
					if !swapped {
						// Contention: pred's edge at this level moved. Re-read
						// it; if pred is still unmarked here, resume the walk
						// at this level instead of redescending from the head.
						restarts++
						if l.Opt.HeadRestart {
							headRestarts++
							continue retry
						}
						pn, ok := l.s.ReadPtr(tid, 1, pred, WLevel0+lv)
						if !ok {
							return false, stRestart, steps, restarts
						}
						if pn.Marked() {
							// pred itself is deleted at this level; the
							// descent that chose it is stale.
							headRestarts++
							continue retry
						}
						curr = pn.WithoutMark()
						continue walk
					}
					curr = succ.WithoutMark()
					if curr.IsNil() {
						if nilRetries++; nilRetries > maxNilRetries {
							return false, stCorruptNil, steps, restarts
						}
						continue retry
					}
					if succ, ok = l.s.ReadPtr(tid, 2, curr, WLevel0+lv); !ok {
						return false, stRestart, steps, restarts
					}
				}
				ckey, ok := l.s.Read(tid, curr, ds.WKey)
				if !ok {
					return false, stRestart, steps, restarts
				}
				l.Hit(tid, ds.PointSearchVisit, ckey)
				if int64(ckey) < key {
					pred = curr
					curr = succ.WithoutMark()
					continue
				}
				preds[lv] = pred
				succs[lv] = curr
				break
			}
		}
		skey, ok := l.s.Read(tid, succs[0], ds.WKey)
		if !ok {
			return false, stRestart, steps, restarts
		}
		return int64(skey) == key, stOK, steps, restarts
	}
}

// Contains implements ds.Set. It uses the same snipping find; a wait-free
// traversal variant exists in the literature but the shared find keeps the
// access pattern uniform for the access-aware verifier.
func (l *List) Contains(tid int, key int64) (bool, error) {
	l.s.BeginOp(tid)
	defer l.s.EndOp(tid)
	return l.containsAt(tid, key)
}

// containsAt is Contains without the bracket: the caller holds an open
// operation bracket for tid (per-op or a fused window).
func (l *List) containsAt(tid int, key int64) (bool, error) {
	var preds, succs [MaxHeight]mem.Ref
	for {
		l.Phase(tid, ds.PhaseRead)
		found, st, steps, restarts := l.find(tid, key, &preds, &succs)
		if corrupt(st) {
			return false, l.corruptErr("contains", st, steps, restarts)
		}
		if st == stRestart {
			continue
		}
		return found, nil
	}
}

// Insert implements ds.Set: link level 0 (the linearization point), then
// link the higher levels best-effort.
func (l *List) Insert(tid int, key int64) (bool, error) {
	l.s.BeginOp(tid)
	defer l.s.EndOp(tid)
	return l.insertAt(tid, key)
}

// insertAt is Insert without the bracket.
func (l *List) insertAt(tid int, key int64) (bool, error) {
	height := randomHeight(tid, key)
	n, err := l.s.Alloc(tid)
	if err != nil {
		return false, err
	}
	l.s.Write(tid, n, ds.WKey, uint64(key))
	l.s.Write(tid, n, WHeight, uint64(height))
	var preds, succs [MaxHeight]mem.Ref
	for {
		l.Phase(tid, ds.PhaseRead)
		found, st, steps, restarts := l.find(tid, key, &preds, &succs)
		if corrupt(st) {
			return false, l.corruptErr("insert", st, steps, restarts)
		}
		if st == stRestart {
			continue
		}
		if found {
			l.s.Retire(tid, n) // lost the race: key already present
			return false, nil
		}
		for lv := 0; lv < height; lv++ {
			if !l.s.WritePtr(tid, n, WLevel0+lv, succs[lv]) {
				return false, ds.ErrCorrupted // n is local; cannot fail for a correct scheme
			}
		}
		if !l.s.Reserve(tid, preds[0], succs[0]) {
			continue
		}
		l.Phase(tid, ds.PhaseWrite)
		if err := l.A.MarkShared(n); err != nil {
			return false, err
		}
		swapped, ok := l.s.CASPtr(tid, preds[0], WLevel0, succs[0], n)
		if !ok {
			continue
		}
		if !swapped {
			continue
		}
		// Linearized. Link the upper levels; abandon a level when the
		// window moved or the node got deleted meanwhile.
		l.linkUpper(tid, key, n, height, &preds, &succs)
		return true, nil
	}
}

// linkUpper links node n into levels 1..height-1. Failures re-find; if n
// becomes marked at level 0 the linking stops (the deleter owns it now).
func (l *List) linkUpper(tid int, key int64, n mem.Ref, height int, preds, succs *[MaxHeight]mem.Ref) {
	for lv := 1; lv < height; lv++ {
		for {
			n0, ok := l.s.Read(tid, n, WLevel0)
			if !ok {
				return
			}
			if mem.Ref(n0).Marked() {
				return // deleted while linking; nothing more to do
			}
			cur, ok := l.s.Read(tid, n, WLevel0+lv)
			if !ok {
				return
			}
			if mem.Ref(cur).Marked() {
				return
			}
			if succs[lv].SameNode(n) || preds[lv].SameNode(n) {
				// A re-find can observe n already linked at this level
				// (a CAS we believed failed, or a helper's view of the
				// window); linking n to itself would create a cycle of
				// valid nodes that no validation catches.
				return
			}
			if mem.Ref(cur) != succs[lv] {
				swapped, ok := l.s.CASPtr(tid, n, WLevel0+lv, mem.Ref(cur), succs[lv])
				if !ok {
					return
				}
				if !swapped {
					continue
				}
			}
			if !l.s.Reserve(tid, preds[lv], n, succs[lv]) {
				return
			}
			l.Phase(tid, ds.PhaseWrite)
			swapped, ok := l.s.CASPtr(tid, preds[lv], WLevel0+lv, succs[lv], n)
			if !ok {
				return
			}
			if swapped {
				break
			}
			found, st, _, _ := l.find(tid, key, preds, succs)
			if st != stOK || !found || succs[0] != n {
				return
			}
		}
	}
}

// Delete implements ds.Set: mark the victim's levels top-down (level 0
// last — that CAS is the linearization point and establishes retirement
// ownership), then re-find to snip it everywhere and retire.
func (l *List) Delete(tid int, key int64) (bool, error) {
	l.s.BeginOp(tid)
	defer l.s.EndOp(tid)
	return l.deleteAt(tid, key)
}

// deleteAt is Delete without the bracket.
func (l *List) deleteAt(tid int, key int64) (bool, error) {
	var preds, succs [MaxHeight]mem.Ref
	for {
		l.Phase(tid, ds.PhaseRead)
		found, st, steps, restarts := l.find(tid, key, &preds, &succs)
		if corrupt(st) {
			return false, l.corruptErr("delete", st, steps, restarts)
		}
		if st == stRestart {
			continue
		}
		if !found {
			return false, nil
		}
		victim := succs[0]
		h, ok := l.s.Read(tid, victim, WHeight)
		if !ok {
			continue
		}
		height := int(h)
		if height < 1 || height > MaxHeight {
			return false, ds.ErrCorrupted
		}
		if !l.s.Reserve(tid, preds[0], victim, succs[0]) {
			continue
		}
		l.Phase(tid, ds.PhaseWrite)
		// Mark upper levels (best-effort; others may also be marking).
		for lv := height - 1; lv >= 1; lv-- {
			for {
				nxt, ok := l.s.Read(tid, victim, WLevel0+lv)
				if !ok {
					break
				}
				r := mem.Ref(nxt)
				if r.Marked() {
					break
				}
				if swapped, ok := l.s.CASPtr(tid, victim, WLevel0+lv, r, r.WithMark()); !ok || swapped {
					break
				}
			}
		}
		// Level 0: the owning CAS.
		for {
			nxt, ok := l.s.Read(tid, victim, WLevel0)
			if !ok {
				break
			}
			r := mem.Ref(nxt)
			if r.Marked() {
				// Someone else linearized the delete.
				break
			}
			swapped, ok := l.s.CASPtr(tid, victim, WLevel0, r, r.WithMark())
			if !ok {
				break
			}
			if swapped {
				// We own the deletion: snip everywhere, then retire.
				if _, st, steps, restarts := l.find(tid, key, &preds, &succs); corrupt(st) {
					return false, l.corruptErr("delete", st, steps, restarts)
				}
				l.s.Retire(tid, victim)
				return true, nil
			}
		}
		// Lost the marking race (or rolled back): re-find; if the key is
		// gone the competing delete won and ours returns false.
	}
}

var (
	_ ds.Iterator = (*List)(nil)
	_ ds.BatchSet = (*List)(nil)
	_ ds.StepSet  = (*List)(nil)
)

// StepOp implements ds.StepSet: one unbracketed op under a caller-held
// bracket. The skip list has no cross-op predecessor cache (its find
// re-derives the full preds/succs frontier per key), so batching buys
// bracket amortization only.
func (l *List) StepOp(tid int, kind ds.BatchKind, key int64) (bool, error) {
	switch kind {
	case ds.BatchContains:
		return l.containsAt(tid, key)
	case ds.BatchInsert:
		return l.insertAt(tid, key)
	case ds.BatchDelete:
		return l.deleteAt(tid, key)
	}
	return false, ds.ErrBadBatchOp
}

// ApplyBatch implements ds.BatchSet via the generic fused window.
func (l *List) ApplyBatch(tid int, ops []ds.BatchOp, res []ds.BatchResult) uint64 {
	return ds.RunBatch(l.s, l, tid, ops, res)
}

// Iterate implements ds.Iterator: an ascending barrier-based walk along
// level 0, skipping marked nodes without snipping them. Emission is
// monotonic (each chunk only reports keys greater than the last emitted
// one), so interference rewinds the walk but never the emission cursor —
// no key is reported twice, and a quiescent list is swept in one pass.
func (l *List) Iterate(tid int, fn func(key int64) bool) error {
	after := int64(ds.KeyMin)
	for {
		l.s.BeginOp(tid)
		done, err := l.iterChunk(tid, &after, fn)
		l.s.EndOp(tid)
		if done || err != nil {
			return err
		}
	}
}

// iterChunk emits up to iterBatch unmarked level-0 keys greater than
// *after inside one operation bracket; rollbacks and nil glimpses rewind
// the walk to the head.
func (l *List) iterChunk(tid int, after *int64, fn func(key int64) bool) (done bool, err error) {
	var steps, restarts uint64
	defer func() { l.Trav.Record(steps, restarts, restarts) }()
	emitted := 0
	for {
		if steps++; steps > maxSteps {
			return false, l.GuardTrip("skiplist", "iterate", steps, restarts)
		}
		l.Phase(tid, ds.PhaseRead)
		sc := 1
		pn, ok := l.s.ReadPtr(tid, sc, l.head, WLevel0)
		if !ok {
			restarts++
			continue
		}
		curr := pn.WithoutMark()
	walk:
		for {
			if steps++; steps > maxSteps {
				return false, l.GuardTrip("skiplist", "iterate", steps, restarts)
			}
			if curr.IsNil() {
				// A transient wide-CAS glimpse (see find); rewind.
				restarts++
				break walk
			}
			if curr == l.tail {
				return true, nil // sweep complete
			}
			sn := 3 - sc // alternate over {1, 2}: curr in sc, next in sn
			cn, ok := l.s.ReadPtr(tid, sn, curr, WLevel0)
			if !ok {
				restarts++
				break walk
			}
			ckey, ok := l.s.Read(tid, curr, ds.WKey)
			if !ok {
				restarts++
				break walk
			}
			k := int64(ckey)
			if !cn.Marked() && k > *after && k != ds.KeyMax {
				*after = k
				if !fn(k) {
					return true, nil
				}
				if emitted++; emitted >= iterBatch {
					return false, nil // re-bracket before continuing
				}
			}
			curr = cn.WithoutMark()
			sc = sn
		}
	}
}

// Keys walks level 0 without barriers and returns the unmarked keys in
// order. Only safe on a quiescent structure.
func (l *List) Keys() []int64 {
	var keys []int64
	a := l.A
	cur, _ := a.Load(0, l.head, WLevel0)
	for {
		r := mem.Ref(cur).WithoutMark()
		if r.IsNil() || r == l.tail {
			return keys
		}
		k, err := a.Load(0, r, ds.WKey)
		if err != nil {
			return keys
		}
		next, err := a.Load(0, r, WLevel0)
		if err != nil {
			return keys
		}
		if !mem.Ref(next).Marked() {
			keys = append(keys, int64(k))
		}
		cur = next
	}
}
