package skiplist_test

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/ds"
	"repro/internal/ds/dstest"
	"repro/internal/ds/skiplist"
	"repro/internal/mem"
)

func TestSuite(t *testing.T) { dstest.RunSetSuite(t, "skiplist") }

// TestSortedInvariant checks level-0 ordering after heavy churn.
func TestSortedInvariant(t *testing.T) {
	env := dstest.NewEnv(t, "ebr", 4, 1<<16, skiplist.PayloadWords, mem.Reuse)
	l, err := skiplist.New(env.S, ds.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dstest.DisjointChurnSet(t, env, l, 1500, 64)
	keys := l.Keys()
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Fatalf("keys not sorted: %v", keys)
	}
	env.AssertSafe(t)
}

// TestSetSemantics property-checks the abstract set behaviour against a
// map model for arbitrary operation sequences.
func TestSetSemantics(t *testing.T) {
	type step struct {
		Op  uint8
		Key uint8
	}
	check := func(steps []step) bool {
		env := dstest.NewEnv(t, "ebr", 1, 1<<12, skiplist.PayloadWords, mem.Reuse)
		l, err := skiplist.New(env.S, ds.Options{})
		if err != nil {
			return false
		}
		model := make(map[int64]bool)
		for _, s := range steps {
			key := int64(s.Key % 32)
			switch s.Op % 3 {
			case 0:
				ok, err := l.Insert(0, key)
				if err != nil || ok == model[key] {
					return false
				}
				model[key] = true
			case 1:
				ok, err := l.Delete(0, key)
				if err != nil || ok != model[key] {
					return false
				}
				delete(model, key)
			default:
				ok, err := l.Contains(0, key)
				if err != nil || ok != model[key] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestTowerRetirement checks that deleting a tall tower really detaches it
// from every level: after delete, re-inserting and searching neighbouring
// keys must behave as if the node never existed.
func TestTowerRetirement(t *testing.T) {
	env := dstest.NewEnv(t, "vbr", 1, 1<<12, skiplist.PayloadWords, mem.Reuse)
	l, err := skiplist.New(env.S, ds.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for k := int64(0); k < 256; k++ {
		if ok, err := l.Insert(0, k); err != nil || !ok {
			t.Fatalf("insert(%d) = %v, %v", k, ok, err)
		}
	}
	for k := int64(0); k < 256; k += 2 {
		if ok, err := l.Delete(0, k); err != nil || !ok {
			t.Fatalf("delete(%d) = %v, %v", k, ok, err)
		}
	}
	env.S.Flush(0)
	for k := int64(0); k < 256; k++ {
		want := k%2 == 1
		ok, err := l.Contains(0, k)
		if err != nil {
			t.Fatalf("contains(%d): %v", k, err)
		}
		if ok != want {
			t.Fatalf("contains(%d) = %v, want %v", k, ok, want)
		}
	}
	if got := len(l.Keys()); got != 128 {
		t.Fatalf("size = %d, want 128", got)
	}
	env.AssertSafe(t)
}
