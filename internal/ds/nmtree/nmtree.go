// Package nmtree implements the Natarajan & Mittal lock-free external
// binary search tree (PPoPP 2014) — reference [33] of the ERA paper —
// expressed over the smr.Scheme barrier interface.
//
// The tree is external: internal nodes route, leaves store keys. Deletion
// is edge-based: the deleter FLAGs the edge to the victim leaf (the mark
// bit of the edge's mem.Ref), TAGs the edge to the sibling (the aux bit),
// and then splices the sibling up with a single CAS on the ancestor's
// edge. Concurrent deletions stack: one ancestor CAS can complete several
// of them at once, detaching a chain of internal nodes together with their
// flagged victim leaves.
//
// Why it matters for the ERA theorem: like Harris's list, searches pass
// through flagged and tagged edges without helping, so a traversal can
// stand inside a detached (retired, possibly reclaimed) region — the
// access pattern that defeats protect-and-validate schemes (HP, HE, IBR).
//
// retire() placement: the thread whose ancestor CAS detaches a chain owns
// the retirement of every detached internal node and flagged leaf; other
// deleters observe their victim gone after a re-seek and return without
// retiring, so each node is retired exactly once and only after it is
// unreachable (Section 4.1 of the paper).
package nmtree

import (
	"repro/internal/ds"
	"repro/internal/mem"
	"repro/internal/smr"
)

// Node payload layout.
const (
	// WKey is the routing/stored key.
	WKey = ds.WKey
	// WLeft and WRight are the child edges (mem.Ref values; the mark bit
	// is the Natarajan-Mittal FLAG, the aux bit the TAG).
	WLeft  = 1
	WRight = 2
	// WIsLeaf distinguishes leaves (1) from internal nodes (0); immutable
	// after publication.
	WIsLeaf = 3
	// PayloadWords is the arena payload size this structure requires.
	PayloadWords = 4
)

// Sentinel keys: all user keys must be strictly below inf1.
const (
	inf1 = ds.KeyMax - 1
	inf2 = ds.KeyMax
)

// Tree is the Natarajan-Mittal external BST.
type Tree struct {
	ds.Instr
	s smr.Scheme
	// root ("R") and child ("S") sentinel internal nodes.
	root, child mem.Ref
}

var _ ds.Set = (*Tree)(nil)

// New builds an empty tree over scheme s: R(inf2) -> {S(inf1), leaf(inf2)},
// S(inf1) -> {leaf(inf1), leaf(inf2)}.
func New(s smr.Scheme, opt ds.Options) (*Tree, error) {
	if s.Heap().Config().PayloadWords < PayloadWords {
		return nil, ds.ErrCorrupted
	}
	t := &Tree{Instr: ds.Instr{Opt: opt, A: s.Heap()}, s: s}
	ds.RegisterLinks(s, []int{WLeft, WRight})
	mk := func(key int64, leaf bool) (mem.Ref, error) {
		r, err := s.Alloc(0)
		if err != nil {
			return mem.NilRef, err
		}
		isLeaf := uint64(0)
		if leaf {
			isLeaf = 1
		}
		if !s.Write(0, r, WKey, uint64(key)) || !s.Write(0, r, WIsLeaf, isLeaf) {
			return mem.NilRef, ds.ErrCorrupted
		}
		if err := s.Heap().MarkShared(r); err != nil {
			return mem.NilRef, err
		}
		return r, nil
	}
	leafInf1, err := mk(inf1, true)
	if err != nil {
		return nil, err
	}
	leafInf2a, err := mk(inf2, true)
	if err != nil {
		return nil, err
	}
	leafInf2b, err := mk(inf2, true)
	if err != nil {
		return nil, err
	}
	if t.child, err = mk(inf1, false); err != nil {
		return nil, err
	}
	if t.root, err = mk(inf2, false); err != nil {
		return nil, err
	}
	if !s.WritePtr(0, t.child, WLeft, leafInf1) ||
		!s.WritePtr(0, t.child, WRight, leafInf2a) ||
		!s.WritePtr(0, t.root, WLeft, t.child) ||
		!s.WritePtr(0, t.root, WRight, leafInf2b) {
		return nil, ds.ErrCorrupted
	}
	return t, nil
}

// Name implements ds.Set.
func (t *Tree) Name() string { return "nmtree" }

// Root returns the root sentinel (used by verifiers and adversaries).
func (t *Tree) Root() mem.Ref { return t.root }

const maxSteps = 1 << 22

type status uint8

const (
	stOK status = iota
	stRestart
	stCorrupt
)

// childWord picks the edge word for key at an internal node with nodeKey.
func childWord(key int64, nodeKey int64) int {
	if key < nodeKey {
		return WLeft
	}
	return WRight
}

// seekRec is the paper's seek record: ancestor's edge to successor was the
// last clean (untagged) edge on the path; parent's edge leads to the leaf.
type seekRec struct {
	ancestor  mem.Ref
	ancWord   int
	ancEdge   mem.Ref // exact edge value read at ancestor (CAS expected)
	successor mem.Ref
	parent    mem.Ref
	leaf      mem.Ref // bare leaf reference
	leafKey   int64
}

// seek descends from the root to the leaf on key's search path, tracking
// the last untagged edge (ancestor -> successor). It never helps: flagged
// and tagged edges are traversed as-is, which is what lets it stand inside
// detached regions. steps is the caller's operation-wide traversal budget;
// a re-seek here is already bounded (O(height), not O(structure)), so the
// bounded-restart overhaul's cached-pred resume does not apply — the
// counters are what the overhaul adds.
func (t *Tree) seek(tid int, key int64, r *seekRec, steps *uint64) status {
	r.ancestor = t.root
	r.ancWord = WLeft
	ancEdge, ok := t.s.ReadPtr(tid, 0, t.root, WLeft)
	if !ok {
		return stRestart
	}
	t.Hit(tid, ds.PointSearchHead, uint64(key))
	r.ancEdge = ancEdge
	r.successor = ancEdge.Bare()
	r.parent = r.successor
	cur := r.successor

	// Descend from S's child.
	parentEdge, ok := t.s.ReadPtr(tid, 1, cur, childWord(key, inf1))
	if !ok {
		return stRestart
	}
	prev := cur
	prevWord := childWord(key, inf1)
	cur = parentEdge.Bare()

	for {
		if *steps++; *steps > maxSteps {
			return stCorrupt
		}
		if cur.IsNil() {
			// A nil edge is the in-flight state of the simulated wide
			// CAS's undo (DESIGN.md, limitation 5): transient, so restart
			// the operation; the callers' bounded retry loops escalate
			// persistence to detected corruption.
			t.s.Stats().Restarts.Add(1)
			return stRestart
		}
		t.Hit(tid, ds.PointSearchStep, uint64(cur))
		isLeaf, ok := t.s.Read(tid, cur, WIsLeaf)
		if !ok {
			return stRestart
		}
		ckey, ok := t.s.Read(tid, cur, WKey)
		if !ok {
			return stRestart
		}
		if isLeaf == 1 {
			t.Hit(tid, ds.PointSearchVisit, ckey)
			r.parent = prev
			r.leaf = cur
			r.leafKey = int64(ckey)
			return stOK
		}
		// Advance. The edge prev -> cur updates (ancestor, successor)
		// when it is untagged.
		if !parentEdge.Aux() {
			r.ancestor = prev
			r.ancWord = prevWord
			r.ancEdge = parentEdge
			r.successor = cur
		}
		w := childWord(key, int64(ckey))
		nextEdge, ok := t.s.ReadPtr(tid, 2, cur, w)
		if !ok {
			return stRestart
		}
		prev, prevWord, parentEdge = cur, w, nextEdge
		cur = nextEdge.Bare()
	}
}

// cleanup attempts to complete the deletion pending at r's parent: TAG the
// keep edge, then splice it up over the ancestor's edge. Returns whether
// the splice CAS succeeded; the successful thread retires the whole
// detached chain. ok=false reports a scheme rollback.
func (t *Tree) cleanup(tid int, key int64, r *seekRec) (done bool, ok bool) {
	leafWord := childWord(key, keyOf(t, tid, r.parent))
	sibWord := WLeft + WRight - leafWord

	le, rok := t.s.Read(tid, r.parent, leafWord)
	if !rok {
		return false, false
	}
	keepWord := sibWord
	if !mem.Ref(le).Marked() {
		se, rok := t.s.Read(tid, r.parent, sibWord)
		if !rok {
			return false, false
		}
		if !mem.Ref(se).Marked() {
			// No deletion is pending at this parent (it resolved between
			// the caller's check and now): nothing to clean. Flags are
			// never cleared in place — they resolve only by detaching the
			// parent — so a live parent with a pending deletion always
			// shows the flag here.
			return false, true
		}
		// The flag is on the sibling edge: keep the key-side child.
		keepWord = leafWord
	}
	// TAG the keep edge (preserving any carried flag).
	var keep mem.Ref
	for i := 0; ; i++ {
		if i > maxSteps {
			return false, false
		}
		kv, rok := t.s.Read(tid, r.parent, keepWord)
		if !rok {
			return false, false
		}
		keep = mem.Ref(kv)
		if keep.Aux() {
			break
		}
		swapped, rok := t.s.CASPtr(tid, r.parent, keepWord, keep, keep.WithAux())
		if !rok {
			return false, false
		}
		if swapped {
			keep = keep.WithAux()
			break
		}
	}
	if !t.s.Reserve(tid, r.ancestor, r.parent) {
		return false, false
	}
	t.Phase(tid, ds.PhaseWrite)
	// Splice: the keep edge's target replaces successor, carrying the
	// keep edge's flag but not its tag.
	swapped, rok := t.s.CASPtr(tid, r.ancestor, r.ancWord, r.ancEdge, keep.WithoutAux())
	if !rok {
		return false, false
	}
	if !swapped {
		return false, true
	}
	// We detached the chain successor..parent: retire it.
	if !t.retireChain(tid, r, keepWord) {
		return false, false
	}
	return true, true
}

// keyOf reads a node's key without rollback handling (keys are immutable;
// a stale read is repaired by the caller's retry loop).
func keyOf(t *Tree, tid int, r mem.Ref) int64 {
	k, _ := t.s.Read(tid, r, WKey)
	return int64(k)
}

// retireChain retires every node detached by a successful splice: the
// internal nodes from successor down to parent and their flagged victim
// leaves. The child kept by the splice (keepWord at parent) stays alive.
// Intermediate chain nodes have exactly one internal child (the chain
// continuation); their other child is a flagged victim leaf.
//
// The chain is exclusively owned (our CAS detached it) and the nodes are
// still active until we retire them, so the walk reads the arena raw: no
// barrier, no rollback — a mid-walk abort would leak part of the chain.
// Stale helpers may still set aux bits on these edges concurrently; the
// walk keys off the immutable WIsLeaf word, not the control bits.
func (t *Tree) retireChain(tid int, r *seekRec, parentKeepWord int) bool {
	cur := r.successor
	for i := 0; ; i++ {
		if i > maxSteps {
			return false
		}
		if cur.SameNode(r.parent) {
			victimWord := WLeft + WRight - parentKeepWord
			ve, err := t.A.Load(tid, cur, victimWord)
			if err != nil {
				return false
			}
			if v := mem.Ref(ve).Bare(); !v.IsNil() {
				t.s.Retire(tid, v)
			}
			t.s.Retire(tid, cur)
			return true
		}
		le, err := t.A.Load(tid, cur, WLeft)
		if err != nil {
			return false
		}
		re, err := t.A.Load(tid, cur, WRight)
		if err != nil {
			return false
		}
		l, rr := mem.Ref(le).Bare(), mem.Ref(re).Bare()
		if l.IsNil() || rr.IsNil() {
			return false
		}
		lLeaf, err := t.A.Load(tid, l, WIsLeaf)
		if err != nil {
			return false
		}
		var victim, next mem.Ref
		if lLeaf == 1 {
			victim, next = l, rr
		} else {
			victim, next = rr, l
		}
		t.s.Retire(tid, victim)
		t.s.Retire(tid, cur)
		cur = next
	}
}

// Contains implements ds.Set: a plain seek.
func (t *Tree) Contains(tid int, key int64) (bool, error) {
	t.s.BeginOp(tid)
	defer t.s.EndOp(tid)
	return t.containsAt(tid, key)
}

// containsAt is Contains without the bracket: the caller holds an open
// operation bracket for tid (per-op or a fused window).
func (t *Tree) containsAt(tid int, key int64) (bool, error) {
	var r seekRec
	var steps, restarts uint64
	defer func() { t.Trav.Record(steps, restarts, restarts) }()
	for {
		if steps > maxSteps {
			return false, t.GuardTrip("nmtree", "contains", steps, restarts)
		}
		t.Phase(tid, ds.PhaseRead)
		switch t.seek(tid, key, &r, &steps) {
		case stCorrupt:
			return false, t.GuardTrip("nmtree", "contains", steps, restarts)
		case stRestart:
			restarts++
			continue
		}
		return r.leafKey == key, nil
	}
}

// Insert implements ds.Set: replace the reached leaf with a fresh internal
// node routing to {new leaf, old leaf}.
func (t *Tree) Insert(tid int, key int64) (bool, error) {
	t.s.BeginOp(tid)
	defer t.s.EndOp(tid)
	return t.insertAt(tid, key)
}

// insertAt is Insert without the bracket.
func (t *Tree) insertAt(tid int, key int64) (bool, error) {
	if key >= inf1 {
		return false, ds.ErrCorrupted // sentinel key space
	}
	newLeaf, err := t.s.Alloc(tid)
	if err != nil {
		return false, err
	}
	t.s.Write(tid, newLeaf, WKey, uint64(key))
	t.s.Write(tid, newLeaf, WIsLeaf, 1)
	newInt, err := t.s.Alloc(tid)
	if err != nil {
		return false, err
	}
	t.s.Write(tid, newInt, WIsLeaf, 0)

	var r seekRec
	var steps, restarts uint64
	defer func() { t.Trav.Record(steps, restarts, restarts) }()
	for {
		if steps > maxSteps {
			return false, t.GuardTrip("nmtree", "insert", steps, restarts)
		}
		t.Phase(tid, ds.PhaseRead)
		switch t.seek(tid, key, &r, &steps) {
		case stCorrupt:
			return false, t.GuardTrip("nmtree", "insert", steps, restarts)
		case stRestart:
			restarts++
			continue
		}
		if r.leafKey == key {
			t.s.Retire(tid, newLeaf)
			t.s.Retire(tid, newInt)
			return false, nil
		}
		// Route: internal key is the larger of the two; smaller goes left.
		intKey, left, right := int64(r.leafKey), r.leaf, newLeaf
		if key > r.leafKey {
			intKey, left, right = key, r.leaf, newLeaf
		} else {
			intKey, left, right = r.leafKey, newLeaf, r.leaf
		}
		if !t.s.Write(tid, newInt, WKey, uint64(intKey)) ||
			!t.s.WritePtr(tid, newInt, WLeft, left) ||
			!t.s.WritePtr(tid, newInt, WRight, right) {
			continue
		}
		leafWord := childWord(key, keyOf(t, tid, r.parent))
		if !t.s.Reserve(tid, r.parent, r.leaf) {
			continue
		}
		t.Phase(tid, ds.PhaseWrite)
		if err := t.A.MarkShared(newLeaf); err != nil {
			return false, err
		}
		if err := t.A.MarkShared(newInt); err != nil {
			return false, err
		}
		swapped, ok := t.s.CASPtr(tid, r.parent, leafWord, r.leaf, newInt)
		if !ok {
			continue
		}
		if swapped {
			return true, nil
		}
		// Failed: if a deletion is pending at this edge, help it.
		ev, ok := t.s.Read(tid, r.parent, leafWord)
		if !ok {
			continue
		}
		edge := mem.Ref(ev)
		if edge.Bare().SameNode(r.leaf) && (edge.Marked() || edge.Aux()) {
			if _, ok := t.cleanup(tid, key, &r); !ok {
				continue
			}
		}
	}
}

// Delete implements ds.Set: INJECTION (flag the victim edge), then
// CLEANUP (tag the keep edge and splice), helping and retrying as needed.
func (t *Tree) Delete(tid int, key int64) (bool, error) {
	t.s.BeginOp(tid)
	defer t.s.EndOp(tid)
	return t.deleteAt(tid, key)
}

// deleteAt is Delete without the bracket.
func (t *Tree) deleteAt(tid int, key int64) (bool, error) {
	var r seekRec
	injected := false
	var victim mem.Ref
	var steps, restarts uint64
	defer func() { t.Trav.Record(steps, restarts, restarts) }()
	for {
		if steps > maxSteps {
			return false, t.GuardTrip("nmtree", "delete", steps, restarts)
		}
		t.Phase(tid, ds.PhaseRead)
		switch t.seek(tid, key, &r, &steps) {
		case stCorrupt:
			return false, t.GuardTrip("nmtree", "delete", steps, restarts)
		case stRestart:
			restarts++
			continue
		}
		if !injected {
			if r.leafKey != key {
				return false, nil
			}
			leafWord := childWord(key, keyOf(t, tid, r.parent))
			if !t.s.Reserve(tid, r.parent, r.leaf) {
				continue
			}
			t.Phase(tid, ds.PhaseWrite)
			swapped, ok := t.s.CASPtr(tid, r.parent, leafWord, r.leaf, r.leaf.WithMark())
			if !ok {
				continue
			}
			if !swapped {
				// Help any deletion pending at this edge, then retry.
				ev, ok := t.s.Read(tid, r.parent, leafWord)
				if !ok {
					continue
				}
				edge := mem.Ref(ev)
				if edge.Bare().SameNode(r.leaf) && (edge.Marked() || edge.Aux()) {
					if _, ok := t.cleanup(tid, key, &r); !ok {
						continue
					}
				}
				continue
			}
			t.Hit(tid, ds.PointDeleteMarked, uint64(key))
			injected = true
			victim = r.leaf
			done, ok := t.cleanup(tid, key, &r)
			if ok && done {
				return true, nil
			}
			continue
		}
		// CLEANUP mode: if our flagged victim is gone, someone else's
		// splice completed our deletion.
		if !r.leaf.SameNode(victim) {
			return true, nil
		}
		done, ok := t.cleanup(tid, key, &r)
		if ok && done {
			return true, nil
		}
	}
}

// iterBatch bounds how many keys one Iterate operation bracket emits.
const iterBatch = 512

// iterWalk outcomes.
const (
	itOK      = iota // subtree fully swept
	itStop           // fn returned false
	itPause          // chunk budget reached; re-bracket and resume
	itRestart        // rollback or transient nil glimpse; rewind from root
	itGuard          // traversal step budget exhausted
)

var (
	_ ds.Iterator = (*Tree)(nil)
	_ ds.BatchSet = (*Tree)(nil)
	_ ds.StepSet  = (*Tree)(nil)
)

// StepOp implements ds.StepSet: one unbracketed op under a caller-held
// bracket. Seeks restart from the root, so batching buys bracket
// amortization only.
func (t *Tree) StepOp(tid int, kind ds.BatchKind, key int64) (bool, error) {
	switch kind {
	case ds.BatchContains:
		return t.containsAt(tid, key)
	case ds.BatchInsert:
		return t.insertAt(tid, key)
	case ds.BatchDelete:
		return t.deleteAt(tid, key)
	}
	return false, ds.ErrBadBatchOp
}

// ApplyBatch implements ds.BatchSet via the generic fused window.
func (t *Tree) ApplyBatch(tid int, ops []ds.BatchOp, res []ds.BatchResult) uint64 {
	return ds.RunBatch(t.s, t, tid, ops, res)
}

// Iterate implements ds.Iterator: an in-order barrier-based DFS over the
// leaves. Emission is monotonic — only leaf keys greater than the cursor
// are reported, and left subtrees that cannot contain such keys are pruned
// — so interference rewinds the DFS to the root but never the cursor: no
// key is reported twice, and a quiescent tree is swept in one pass.
func (t *Tree) Iterate(tid int, fn func(key int64) bool) error {
	after := int64(ds.KeyMin)
	for {
		t.s.BeginOp(tid)
		done, err := t.iterChunk(tid, &after, fn)
		t.s.EndOp(tid)
		if done || err != nil {
			return err
		}
	}
}

// iterChunk emits up to iterBatch leaf keys greater than *after inside one
// operation bracket.
func (t *Tree) iterChunk(tid int, after *int64, fn func(key int64) bool) (done bool, err error) {
	var steps, restarts uint64
	defer func() { t.Trav.Record(steps, restarts, restarts) }()
	emitted := 0
	for {
		if steps++; steps > maxSteps {
			return false, t.GuardTrip("nmtree", "iterate", steps, restarts)
		}
		t.Phase(tid, ds.PhaseRead)
		switch t.iterWalk(tid, t.root, after, fn, &steps, &emitted) {
		case itOK, itStop:
			return true, nil
		case itPause:
			return false, nil
		case itGuard:
			return false, t.GuardTrip("nmtree", "iterate", steps, restarts)
		case itRestart:
			restarts++
		}
	}
}

// iterWalk recursively sweeps cur's subtree in key order. An internal
// node's left subtree holds keys strictly below its routing key, so it is
// skipped whenever it cannot contain a key above the cursor; the right
// subtree is always descended. Flagged and tagged edges are traversed
// as-is, like seek.
func (t *Tree) iterWalk(tid int, cur mem.Ref, after *int64, fn func(key int64) bool, steps *uint64, emitted *int) int {
	cur = cur.Bare()
	if cur.IsNil() {
		return itRestart // transient wide-CAS glimpse (see seek)
	}
	if *steps++; *steps > maxSteps {
		return itGuard
	}
	isLeaf, ok := t.s.Read(tid, cur, WIsLeaf)
	if !ok {
		return itRestart
	}
	kv, ok := t.s.Read(tid, cur, WKey)
	if !ok {
		return itRestart
	}
	k := int64(kv)
	if isLeaf == 1 {
		if k > *after && k < inf1 {
			*after = k
			if !fn(k) {
				return itStop
			}
			if *emitted++; *emitted >= iterBatch {
				return itPause
			}
		}
		return itOK
	}
	if *after+1 < k {
		le, ok := t.s.ReadPtr(tid, 1, cur, WLeft)
		if !ok {
			return itRestart
		}
		if st := t.iterWalk(tid, le, after, fn, steps, emitted); st != itOK {
			return st
		}
	}
	re, ok := t.s.ReadPtr(tid, 2, cur, WRight)
	if !ok {
		return itRestart
	}
	return t.iterWalk(tid, re, after, fn, steps, emitted)
}

// Keys walks the tree without barriers and returns the leaf keys in order
// (sentinel leaves excluded). Only safe on a quiescent structure.
func (t *Tree) Keys() []int64 {
	var keys []int64
	var walk func(r mem.Ref)
	walk = func(r mem.Ref) {
		r = r.Bare()
		if r.IsNil() {
			return
		}
		isLeaf, err := t.A.Load(0, r, WIsLeaf)
		if err != nil {
			return
		}
		k, err := t.A.Load(0, r, WKey)
		if err != nil {
			return
		}
		if isLeaf == 1 {
			if int64(k) < inf1 {
				keys = append(keys, int64(k))
			}
			return
		}
		l, err := t.A.Load(0, r, WLeft)
		if err != nil {
			return
		}
		rr, err := t.A.Load(0, r, WRight)
		if err != nil {
			return
		}
		walk(mem.Ref(l))
		walk(mem.Ref(rr))
	}
	walk(t.root)
	return keys
}
