package nmtree_test

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/ds"
	"repro/internal/ds/dstest"
	"repro/internal/ds/nmtree"
	"repro/internal/mem"
)

func TestSuite(t *testing.T) { dstest.RunSetSuite(t, "nmtree") }

// TestSetSemantics property-checks the abstract set behaviour against a
// map model for arbitrary operation sequences.
func TestSetSemantics(t *testing.T) {
	type step struct {
		Op  uint8
		Key uint8
	}
	check := func(steps []step) bool {
		env := dstest.NewEnv(t, "ebr", 1, 1<<12, nmtree.PayloadWords, mem.Reuse)
		tr, err := nmtree.New(env.S, ds.Options{})
		if err != nil {
			return false
		}
		model := make(map[int64]bool)
		for _, s := range steps {
			key := int64(s.Key % 32)
			switch s.Op % 3 {
			case 0:
				ok, err := tr.Insert(0, key)
				if err != nil || ok == model[key] {
					return false
				}
				model[key] = true
			case 1:
				ok, err := tr.Delete(0, key)
				if err != nil || ok != model[key] {
					return false
				}
				delete(model, key)
			default:
				ok, err := tr.Contains(0, key)
				if err != nil || ok != model[key] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestInOrderInvariant checks the BST property after heavy churn: the
// leaf keys come out of an in-order walk sorted.
func TestInOrderInvariant(t *testing.T) {
	env := dstest.NewEnv(t, "ebr", 4, 1<<16, nmtree.PayloadWords, mem.Reuse)
	tr, err := nmtree.New(env.S, ds.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dstest.DisjointChurnSet(t, env, tr, 2000, 48)
	keys := tr.Keys()
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Fatalf("in-order walk not sorted: %v", keys)
	}
	env.AssertSafe(t)
}

// TestExternalShape: every stored key lives in a leaf; internal nodes
// only route. Verified indirectly: after inserting n distinct keys the
// walk returns exactly those keys, and deleting them all empties the tree.
func TestExternalShape(t *testing.T) {
	env := dstest.NewEnv(t, "vbr", 1, 1<<12, nmtree.PayloadWords, mem.Reuse)
	tr, err := nmtree.New(env.S, ds.Options{})
	if err != nil {
		t.Fatal(err)
	}
	keys := []int64{8, 3, 12, 1, 5, 10, 14, 0, 2, 4, 6, 9, 11, 13, 15, 7}
	for _, k := range keys {
		if ok, err := tr.Insert(0, k); err != nil || !ok {
			t.Fatalf("insert(%d) = %v, %v", k, ok, err)
		}
	}
	if got := len(tr.Keys()); got != len(keys) {
		t.Fatalf("size = %d, want %d", got, len(keys))
	}
	for _, k := range keys {
		if ok, err := tr.Delete(0, k); err != nil || !ok {
			t.Fatalf("delete(%d) = %v, %v", k, ok, err)
		}
	}
	if got := tr.Keys(); len(got) != 0 {
		t.Fatalf("tree not empty after deleting everything: %v", got)
	}
	// The three sentinel leaves and two sentinel internals survive;
	// everything else must have been retired and (with VBR) reclaimed.
	env.S.Flush(0)
	if active := env.A.Stats().Active(); active != 5 {
		t.Fatalf("active nodes = %d, want the 5 sentinels", active)
	}
	env.AssertSafe(t)
}

// TestSentinelKeySpaceGuard: keys at or above the sentinel range are
// rejected rather than corrupting the routing.
func TestSentinelKeySpaceGuard(t *testing.T) {
	env := dstest.NewEnv(t, "ebr", 1, 1<<10, nmtree.PayloadWords, mem.Reuse)
	tr, err := nmtree.New(env.S, ds.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Insert(0, ds.KeyMax); err == nil {
		t.Fatal("sentinel-range key accepted")
	}
}

// TestCompoundedDeletes drives the multi-deletion stacking path: delete
// many sibling pairs concurrently so cleanups compound, then check the
// final contents and that no node leaked or double-retired.
func TestCompoundedDeletes(t *testing.T) {
	env := dstest.NewEnv(t, "ebr", 4, 1<<14, nmtree.PayloadWords, mem.Reuse)
	tr, err := nmtree.New(env.S, ds.Options{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 256
	for k := int64(0); k < n; k++ {
		if ok, err := tr.Insert(0, k); err != nil || !ok {
			t.Fatalf("insert(%d) = %v, %v", k, ok, err)
		}
	}
	done := make(chan error, 4)
	for tid := 0; tid < 4; tid++ {
		go func(tid int) {
			for k := int64(tid); k < n; k += 4 {
				if ok, err := tr.Delete(tid, k); err != nil || !ok {
					done <- err
					return
				}
			}
			done <- nil
		}(tid)
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if got := tr.Keys(); len(got) != 0 {
		t.Fatalf("tree not empty: %v", got)
	}
	for tid := 0; tid < 4; tid++ {
		env.S.Flush(tid)
	}
	env.S.Flush(0)
	// n leaves + n internals were detached; only sentinels remain active.
	if active := env.A.Stats().Active(); active != 5 {
		t.Fatalf("active nodes = %d, want 5 (leak or double retire)", active)
	}
	env.AssertSafe(t)
}
