package ds

import (
	"errors"

	"repro/internal/smr"
)

// Batch-fused execution: a BatchSet runs a whole slice of point ops
// under one amortized SMR bracket (smr.BeginOps / Window.Step /
// EndOps) instead of paying BeginOp+EndOp per op. The ordered list
// structures additionally reuse their validated-predecessor cache
// across consecutive ops, so a key-sorted batch of k ops becomes one
// amortized sweep. Semantics are identical to running the ops one by
// one in slice order on the same thread: same results, same per-op
// errors, execution continues past a failed op.

// BatchKind is a point-op kind inside a batch. The values deliberately
// mirror workload.Op (contains=0, insert=1, delete=2) so the store can
// convert with a cast.
type BatchKind uint8

// Batch op kinds.
const (
	BatchContains BatchKind = iota
	BatchInsert
	BatchDelete
)

// BatchOp is one point operation of a batch.
type BatchOp struct {
	Kind BatchKind
	Key  int64
}

// BatchResult is the outcome of one batch op, matching what the
// structure's Contains/Insert/Delete would have returned.
type BatchResult struct {
	OK  bool
	Err error
}

// ErrBadBatchOp reports an op kind outside the Batch* set.
var ErrBadBatchOp = errors.New("ds: invalid batch op kind")

// BatchSet is the fused fast path. ApplyBatch executes ops in order on
// thread tid, writing res[i] for ops[i] (res must have len >= len(ops)),
// and returns the number of bracket renewals the fused window paid —
// the caller's measure of how much amortization it got. Callers that
// want key locality sort the batch first; ApplyBatch itself imposes no
// order.
type BatchSet interface {
	ApplyBatch(tid int, ops []BatchOp, res []BatchResult) (rebrackets uint64)
}

// StepSet is the unbracketed single-op surface backing fusion: StepOp
// runs one op assuming the caller already holds an open bracket for
// tid (an smr.Window or a plain BeginOp). Structures that compose
// other structures (the hashmap over its buckets) drive StepOp inside
// their own fused window.
type StepSet interface {
	StepOp(tid int, kind BatchKind, key int64) (bool, error)
}

// RunBatch is the generic ApplyBatch: a fused window around per-op
// StepOp calls. Structures without a cross-op predecessor cache use it
// verbatim.
func RunBatch(s smr.Scheme, set StepSet, tid int, ops []BatchOp, res []BatchResult) uint64 {
	w := smr.BeginOps(s, tid, 0)
	for i := range ops {
		if i > 0 {
			w.Step()
		}
		ok, err := set.StepOp(tid, ops[i].Kind, ops[i].Key)
		res[i] = BatchResult{OK: ok, Err: err}
	}
	w.EndOps()
	return w.Rebrackets()
}
