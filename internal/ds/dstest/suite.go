package dstest

import (
	"testing"

	"repro/internal/ds"
	"repro/internal/ds/registry"
	"repro/internal/mem"
	"repro/internal/smr/all"
)

// schemesFor returns every safe scheme applicable to structure per the
// paper's classification (the non-applicable pairs are exercised by the
// deterministic adversary tests instead).
func schemesFor(structure string) []string {
	var names []string
	for _, s := range all.SafeNames() {
		if registry.Applicable(s, structure) {
			names = append(names, s)
		}
	}
	return names
}

// suiteEnv builds an env and structure instance for one subtest.
func suiteEnv(t *testing.T, scheme, structure string, n int) (*Env, registry.Info) {
	t.Helper()
	info := registry.MustGet(structure)
	env := NewEnv(t, scheme, n, 1<<16, info.PayloadWords, mem.Reuse)
	return env, info
}

// RunSetSuite runs the full conformance suite for a set structure across
// every applicable scheme.
func RunSetSuite(t *testing.T, structure string) {
	for _, scheme := range schemesFor(structure) {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			t.Run("sequential", func(t *testing.T) {
				env, info := suiteEnv(t, scheme, structure, 1)
				set, err := info.NewSet(env.S, ds.Options{})
				if err != nil {
					t.Fatal(err)
				}
				SequentialSet(t, set, 64, 4000)
				env.AssertSafe(t)
			})
			t.Run("linearizable", func(t *testing.T) {
				env, info := suiteEnv(t, scheme, structure, 4)
				set, err := info.NewSet(env.S, ds.Options{})
				if err != nil {
					t.Fatal(err)
				}
				ConcurrentSet(t, env, set, 10, 3, 8)
				env.AssertSafe(t)
			})
			t.Run("churn", func(t *testing.T) {
				env, info := suiteEnv(t, scheme, structure, 4)
				set, err := info.NewSet(env.S, ds.Options{})
				if err != nil {
					t.Fatal(err)
				}
				DisjointChurnSet(t, env, set, 2500, 48)
				env.AssertSafe(t)
			})
			t.Run("batch", func(t *testing.T) {
				envA, info := suiteEnv(t, scheme, structure, 1)
				a, err := info.NewSet(envA.S, ds.Options{})
				if err != nil {
					t.Fatal(err)
				}
				envB, _ := suiteEnv(t, scheme, structure, 1)
				b, err := info.NewSet(envB.S, ds.Options{})
				if err != nil {
					t.Fatal(err)
				}
				// 700-op batches overrun the K=512 fused window, so the
				// mid-window re-bracket cadence runs under every scheme.
				BatchEquivalenceSet(t, a, b, 6, 700, 96)
				envA.AssertSafe(t)
				envB.AssertSafe(t)
			})
			t.Run("batch-concurrent", func(t *testing.T) {
				env, info := suiteEnv(t, scheme, structure, 4)
				set, err := info.NewSet(env.S, ds.Options{})
				if err != nil {
					t.Fatal(err)
				}
				ConcurrentBatchSet(t, env, set, 6, 600, 48)
				env.AssertSafe(t)
			})
			t.Run("iterate", func(t *testing.T) {
				env, info := suiteEnv(t, scheme, structure, 4)
				set, err := info.NewSet(env.S, ds.Options{})
				if err != nil {
					t.Fatal(err)
				}
				IterateSet(t, env, set, 48)
				env.AssertSafe(t)
			})
		})
	}
}

// RunQueueSuite runs the full conformance suite for a queue structure.
func RunQueueSuite(t *testing.T, structure string) {
	for _, scheme := range schemesFor(structure) {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			t.Run("sequential", func(t *testing.T) {
				env, info := suiteEnv(t, scheme, structure, 1)
				q, err := info.NewQueue(env.S, ds.Options{})
				if err != nil {
					t.Fatal(err)
				}
				SequentialQueue(t, q, 4000)
				env.AssertSafe(t)
			})
			t.Run("linearizable", func(t *testing.T) {
				env, info := suiteEnv(t, scheme, structure, 4)
				q, err := info.NewQueue(env.S, ds.Options{})
				if err != nil {
					t.Fatal(err)
				}
				ConcurrentQueue(t, env, q, 10, 3)
				env.AssertSafe(t)
			})
		})
	}
}

// RunStackSuite runs the full conformance suite for a stack structure.
func RunStackSuite(t *testing.T, structure string) {
	for _, scheme := range schemesFor(structure) {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			t.Run("sequential", func(t *testing.T) {
				env, info := suiteEnv(t, scheme, structure, 1)
				st, err := info.NewStack(env.S, ds.Options{})
				if err != nil {
					t.Fatal(err)
				}
				SequentialStack(t, st, 4000)
				env.AssertSafe(t)
			})
			t.Run("linearizable", func(t *testing.T) {
				env, info := suiteEnv(t, scheme, structure, 4)
				st, err := info.NewStack(env.S, ds.Options{})
				if err != nil {
					t.Fatal(err)
				}
				ConcurrentStack(t, env, st, 10, 3)
				env.AssertSafe(t)
			})
		})
	}
}
