package dstest

import (
	"sort"
	"sync"
	"testing"

	"repro/internal/ds"
	"repro/internal/smr"
)

// sortBatchOps stable-sorts a batch by key, the order the store's fused
// worker feeds ApplyBatch — the arrangement that exercises the cross-op
// predecessor cache, duplicate-key handoffs included.
func sortBatchOps(ops []ds.BatchOp) {
	sort.SliceStable(ops, func(i, j int) bool { return ops[i].Key < ops[j].Key })
}

// BatchEquivalenceSet checks the fused batch path against a serial twin:
// the same op sequence runs through a's ApplyBatch (one amortized SMR
// bracket per batch) and through b's public per-op methods in the same
// order, and every single result must match bit for bit. Batches longer
// than the fused window's K verify the mid-window re-bracket cadence
// actually engages without perturbing results.
func BatchEquivalenceSet(tb testing.TB, a, b ds.Set, batches, batchSize, keyRange int) {
	tb.Helper()
	ab, ok := a.(ds.BatchSet)
	if !ok {
		tb.Fatalf("%s does not implement ds.BatchSet", a.Name())
	}
	r := newRNG(77)
	ops := make([]ds.BatchOp, batchSize)
	res := make([]ds.BatchResult, batchSize)
	var rebrackets uint64
	for bi := 0; bi < batches; bi++ {
		for i := range ops {
			ops[i] = ds.BatchOp{Kind: ds.BatchKind(r.intn(3)), Key: int64(r.intn(keyRange))}
		}
		sortBatchOps(ops)
		rebrackets += ab.ApplyBatch(0, ops, res)
		for i, op := range ops {
			if res[i].Err != nil {
				tb.Fatalf("batch %d op %d: fused (kind %d, key %d): %v", bi, i, op.Kind, op.Key, res[i].Err)
			}
			var want bool
			var err error
			switch op.Kind {
			case ds.BatchContains:
				want, err = b.Contains(0, op.Key)
			case ds.BatchInsert:
				want, err = b.Insert(0, op.Key)
			case ds.BatchDelete:
				want, err = b.Delete(0, op.Key)
			}
			if err != nil {
				tb.Fatalf("batch %d op %d: serial (kind %d, key %d): %v", bi, i, op.Kind, op.Key, err)
			}
			if res[i].OK != want {
				tb.Fatalf("batch %d op %d (kind %d, key %d): fused %v, serial %v",
					bi, i, op.Kind, op.Key, res[i].OK, want)
			}
		}
	}
	if batchSize > smr.DefaultWindow && rebrackets == 0 {
		tb.Errorf("no mid-window re-brackets across %d fused batches of %d ops (window K=%d)",
			batches, batchSize, smr.DefaultWindow)
	}
	// The twins must agree on the final contents, not just per-op results.
	ka, aok := a.(interface{ Keys() []int64 })
	kb, bok := b.(interface{ Keys() []int64 })
	if aok && bok {
		fused, serial := ka.Keys(), kb.Keys()
		sort.Slice(fused, func(i, j int) bool { return fused[i] < fused[j] })
		sort.Slice(serial, func(i, j int) bool { return serial[i] < serial[j] })
		if len(fused) != len(serial) {
			tb.Fatalf("final contents diverge: fused holds %d keys, serial %d", len(fused), len(serial))
		}
		for i := range fused {
			if fused[i] != serial[i] {
				tb.Fatalf("final contents diverge at position %d: fused %d, serial %d", i, fused[i], serial[i])
			}
		}
	}
}

// ConcurrentBatchSet drives fused batches from every thread at once over
// per-thread disjoint key partitions (thread t owns [t*keysPerThread,
// (t+1)*keysPerThread)), so each thread's results check exactly against
// its private model despite full structural concurrency — the -race
// exercise for windows interleaving on one structure and one SMR domain.
func ConcurrentBatchSet(tb testing.TB, env *Env, set ds.Set, batches, batchSize, keysPerThread int) {
	tb.Helper()
	bs, ok := set.(ds.BatchSet)
	if !ok {
		tb.Fatalf("%s does not implement ds.BatchSet", set.Name())
	}
	var wg sync.WaitGroup
	for tid := 0; tid < env.N; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			r := newRNG(uint64(tid) + 909)
			base := int64(tid * keysPerThread)
			model := make(map[int64]bool)
			ops := make([]ds.BatchOp, batchSize)
			res := make([]ds.BatchResult, batchSize)
			for bi := 0; bi < batches; bi++ {
				for i := range ops {
					ops[i] = ds.BatchOp{Kind: ds.BatchKind(r.intn(3)), Key: base + int64(r.intn(keysPerThread))}
				}
				sortBatchOps(ops)
				bs.ApplyBatch(tid, ops, res)
				for i, op := range ops {
					if res[i].Err != nil {
						tb.Errorf("T%d batch %d op %d: %v", tid, bi, i, res[i].Err)
						return
					}
					var want bool
					switch op.Kind {
					case ds.BatchContains:
						want = model[op.Key]
					case ds.BatchInsert:
						want = !model[op.Key]
						model[op.Key] = true
					case ds.BatchDelete:
						want = model[op.Key]
						delete(model, op.Key)
					}
					if res[i].OK != want {
						tb.Errorf("T%d batch %d op %d (kind %d, key %d) = %v, model says %v",
							tid, bi, i, op.Kind, op.Key, res[i].OK, want)
						return
					}
				}
			}
		}(tid)
	}
	wg.Wait()
}
