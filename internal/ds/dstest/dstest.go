// Package dstest provides the shared conformance harness the per-structure
// test packages run: model-based sequential suites, linearizability-checked
// concurrent rounds, disjoint-key churn, and safety accounting.
//
// Every check runs for each (scheme, structure) pair the paper classifies
// as applicable (registry.Applicable); the deterministic incompatibility
// demonstrations for the non-applicable pairs live in the core/adversary
// package instead.
package dstest

import (
	"sync"
	"testing"

	"repro/internal/ds"
	"repro/internal/hist"
	"repro/internal/mem"
	"repro/internal/smr"
	"repro/internal/smr/all"
)

// Env bundles an arena and a scheme instance for one test.
type Env struct {
	A *mem.Arena
	S smr.Scheme
	N int
}

// NewEnv builds an arena and the named scheme over it. slots <= 0 selects a
// default heap size.
func NewEnv(tb testing.TB, scheme string, n, slots, payloadWords int, mode mem.ReclaimMode) *Env {
	tb.Helper()
	if slots <= 0 {
		slots = 1 << 16
	}
	a := mem.NewArena(mem.Config{
		Slots:        slots,
		PayloadWords: payloadWords,
		MetaWords:    smr.MetaWords,
		Threads:      n,
		Mode:         mode,
	})
	s, err := all.New(scheme, a, n, 0)
	if err != nil {
		tb.Fatalf("building scheme %s: %v", scheme, err)
	}
	return &Env{A: a, S: s, N: n}
}

// AssertSafe fails the test if the run violated Definition 4.2. Optimistic
// (rollback-requiring) schemes are allowed unsafe accesses provided the
// stale values never escape (VBR/NBR read reclaimed memory and discard the
// result; their update attempts through invalid pointers are guaranteed to
// fail); every other scheme must have performed only safe accesses.
// Segmentation faults (system-space accesses) and life-cycle violations are
// never allowed.
func (e *Env) AssertSafe(tb testing.TB) {
	tb.Helper()
	sn := e.A.Stats().Snapshot()
	if !e.S.Props().RequiresRollback {
		if n := sn.UnsafeAccesses(); n != 0 {
			tb.Errorf("%s: %d unsafe accesses (loads=%d stores=%d faults=%d)",
				e.S.Name(), n, sn.UnsafeLoads, sn.UnsafeStores, sn.Faults)
		}
	}
	if sn.Faults != 0 {
		tb.Errorf("%s: %d segmentation faults (Definition 4.2, Condition 1)", e.S.Name(), sn.Faults)
	}
	if sn.Violations != 0 {
		tb.Errorf("%s: %d life-cycle violations", e.S.Name(), sn.Violations)
	}
	if st := e.S.Stats().Snapshot(); st.StaleUses != 0 {
		tb.Errorf("%s: %d stale value uses (Definition 4.2, Condition 3 violation)", e.S.Name(), st.StaleUses)
	}
}

// rng is a splitmix64 pseudo-random generator for reproducible workloads.
type rng uint64

func newRNG(seed uint64) *rng { r := rng(seed*2685821657736338717 + 1); return &r }

func (r *rng) next() uint64 {
	*r += 0x9e3779b97f4a7c15
	z := uint64(*r)
	z = (z ^ z>>30) * 0xbf58476d1ce4e5b9
	z = (z ^ z>>27) * 0x94d049bb133111eb
	return z ^ z>>31
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// SequentialSet drives a single-threaded model-based suite against set.
func SequentialSet(tb testing.TB, set ds.Set, keyRange, steps int) {
	tb.Helper()
	model := make(map[int64]bool)
	r := newRNG(42)
	for i := 0; i < steps; i++ {
		key := int64(r.intn(keyRange))
		switch r.intn(3) {
		case 0:
			got, err := set.Insert(0, key)
			if err != nil {
				tb.Fatalf("step %d: insert(%d): %v", i, key, err)
			}
			want := !model[key]
			if got != want {
				tb.Fatalf("step %d: insert(%d) = %v, model says %v", i, key, got, want)
			}
			model[key] = true
		case 1:
			got, err := set.Delete(0, key)
			if err != nil {
				tb.Fatalf("step %d: delete(%d): %v", i, key, err)
			}
			want := model[key]
			if got != want {
				tb.Fatalf("step %d: delete(%d) = %v, model says %v", i, key, got, want)
			}
			delete(model, key)
		default:
			got, err := set.Contains(0, key)
			if err != nil {
				tb.Fatalf("step %d: contains(%d): %v", i, key, err)
			}
			if got != model[key] {
				tb.Fatalf("step %d: contains(%d) = %v, model says %v", i, key, got, model[key])
			}
		}
	}
	// Cross-check the final contents for structures that expose Keys().
	if ks, ok := set.(interface{ Keys() []int64 }); ok {
		keys := ks.Keys()
		if len(keys) != len(model) {
			tb.Fatalf("final size %d, model %d", len(keys), len(model))
		}
		for _, k := range keys {
			if !model[k] {
				tb.Fatalf("final contents contain %d, model does not", k)
			}
		}
	}
}

// SequentialQueue drives a single-threaded model-based suite.
func SequentialQueue(tb testing.TB, q ds.Queue, steps int) {
	tb.Helper()
	var model []int64
	r := newRNG(43)
	for i := 0; i < steps; i++ {
		if r.intn(2) == 0 || len(model) == 0 && r.intn(4) != 0 {
			v := int64(r.next() % 1000)
			if err := q.Enqueue(0, v); err != nil {
				tb.Fatalf("step %d: enqueue: %v", i, err)
			}
			model = append(model, v)
		} else {
			v, ok, err := q.Dequeue(0)
			if err != nil {
				tb.Fatalf("step %d: dequeue: %v", i, err)
			}
			if ok != (len(model) > 0) {
				tb.Fatalf("step %d: dequeue ok=%v, model len %d", i, ok, len(model))
			}
			if ok {
				if v != model[0] {
					tb.Fatalf("step %d: dequeue = %d, model head %d", i, v, model[0])
				}
				model = model[1:]
			}
		}
	}
}

// SequentialStack drives a single-threaded model-based suite.
func SequentialStack(tb testing.TB, st ds.Stack, steps int) {
	tb.Helper()
	var model []int64
	r := newRNG(44)
	for i := 0; i < steps; i++ {
		if r.intn(2) == 0 || len(model) == 0 && r.intn(4) != 0 {
			v := int64(r.next() % 1000)
			if err := st.Push(0, v); err != nil {
				tb.Fatalf("step %d: push: %v", i, err)
			}
			model = append(model, v)
		} else {
			v, ok, err := st.Pop(0)
			if err != nil {
				tb.Fatalf("step %d: pop: %v", i, err)
			}
			if ok != (len(model) > 0) {
				tb.Fatalf("step %d: pop ok=%v, model len %d", i, ok, len(model))
			}
			if ok {
				top := model[len(model)-1]
				if v != top {
					tb.Fatalf("step %d: pop = %d, model top %d", i, v, top)
				}
				model = model[:len(model)-1]
			}
		}
	}
}

// IterateSet verifies the ds.Iterator contract. Phase 1 (quiescent fast
// path): after single-threaded churn, one Iterate pass must report exactly
// the model contents, each key once, and an early-stopped pass must stop.
// Phase 2 (concurrent fallback): while threads 1..N-1 churn a disjoint
// upper key range, repeated passes on tid 0 must report every persistent
// key and never report any key twice within a pass.
func IterateSet(tb testing.TB, env *Env, set ds.Set, keyRange int) {
	tb.Helper()
	it, ok := set.(ds.Iterator)
	if !ok {
		tb.Fatalf("%s does not implement ds.Iterator", set.Name())
	}
	model := make(map[int64]bool)
	r := newRNG(77)
	for i := 0; i < keyRange*4; i++ {
		key := int64(r.intn(keyRange))
		if r.intn(2) == 0 {
			if _, err := set.Insert(0, key); err != nil {
				tb.Fatalf("prefill insert(%d): %v", key, err)
			}
			model[key] = true
		} else {
			if _, err := set.Delete(0, key); err != nil {
				tb.Fatalf("prefill delete(%d): %v", key, err)
			}
			delete(model, key)
		}
	}
	seen := make(map[int64]int)
	if err := it.Iterate(0, func(k int64) bool { seen[k]++; return true }); err != nil {
		tb.Fatalf("quiescent iterate: %v", err)
	}
	for k, c := range seen {
		if c != 1 {
			tb.Errorf("quiescent iterate reported key %d %d times", k, c)
		}
		if !model[k] {
			tb.Errorf("quiescent iterate reported absent key %d", k)
		}
	}
	if len(seen) != len(model) {
		tb.Errorf("quiescent iterate saw %d keys, model has %d", len(seen), len(model))
	}
	visited := 0
	if err := it.Iterate(0, func(int64) bool { visited++; return false }); err != nil {
		tb.Fatalf("early-stopped iterate: %v", err)
	}
	if len(model) > 0 && visited != 1 {
		tb.Errorf("early-stopped iterate visited %d keys, want 1", visited)
	}
	if env.N < 2 {
		return
	}
	// Concurrent phase: the model keys stay untouched (persistent); each
	// churner owns a disjoint slice of [keyRange, 2*keyRange).
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for tid := 1; tid < env.N; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			r := newRNG(uint64(tid) + 7777)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := int64(keyRange + r.intn(keyRange)/(env.N-1)*(env.N-1) + (tid - 1))
				var err error
				if i%2 == 0 {
					_, err = set.Insert(tid, key)
				} else {
					_, err = set.Delete(tid, key)
				}
				if err != nil {
					tb.Errorf("churner T%d: %v", tid, err)
					return
				}
			}
		}(tid)
	}
	for pass := 0; pass < 4 && !tb.Failed(); pass++ {
		seen := make(map[int64]int)
		if err := it.Iterate(0, func(k int64) bool { seen[k]++; return true }); err != nil {
			tb.Errorf("concurrent iterate pass %d: %v", pass, err)
			break
		}
		for k, c := range seen {
			if c > 1 {
				tb.Errorf("pass %d: key %d reported %d times under mutation", pass, k, c)
			}
		}
		for k := range model {
			if seen[k] == 0 {
				tb.Errorf("pass %d: persistent key %d not reported", pass, k)
			}
		}
	}
	close(stop)
	wg.Wait()
}

// RestartStormSet reproduces the ROADMAP item 5 restart storm: a chain of
// live keys, every thread churning its own partition while also running
// full-chain searches, so unlink contention lands on long traversal
// paths. With head-restart finds one operation could burn toward the
// maxSteps guard (~millions of steps) inside a single epoch-pinning
// bracket; with bounded restarts the worst operation must stay within a
// small multiple of the chain length. backlogBudget, when non-zero, also
// bounds the heap's peak retired backlog (the EBR symptom of the storm:
// a pinned epoch balloons the backlog with no fault injected).
func RestartStormSet(tb testing.TB, env *Env, set ds.Set, chain, opsPerThread int, backlogBudget uint64) {
	tb.Helper()
	tr, ok := set.(ds.TravReporter)
	if !ok {
		tb.Fatalf("%s does not expose traversal counters", set.Name())
	}
	for k := 0; k < chain; k++ {
		if _, err := set.Insert(0, int64(k)); err != nil {
			tb.Fatalf("prefill insert(%d): %v", k, err)
		}
	}
	var wg sync.WaitGroup
	for tid := 0; tid < env.N; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			r := newRNG(uint64(tid) + 555)
			for i := 0; i < opsPerThread; i++ {
				// Shared (not disjoint) keys: colliding unlink CASes on
				// the same marked nodes are what force restarts.
				key := int64(r.intn(chain))
				var err error
				switch r.intn(4) {
				case 0:
					_, err = set.Delete(tid, key)
				case 1:
					_, err = set.Insert(tid, key)
				default:
					// A far-key search walks the whole chain — the victim
					// of the storm.
					_, err = set.Contains(tid, int64(chain-1))
				}
				if err != nil {
					tb.Errorf("T%d op %d: %v", tid, i, err)
					return
				}
			}
		}(tid)
	}
	wg.Wait()
	if tb.Failed() {
		return
	}
	tv := tr.TravSnapshot()
	if tv.GuardTrips != 0 {
		tb.Errorf("%d traversal guard trips under churn", tv.GuardTrips)
	}
	if bound := uint64(64 * chain); tv.MaxOpSteps > bound {
		tb.Errorf("worst single-op traversal took %d steps, want <= %d (chain %d): restart storm",
			tv.MaxOpSteps, bound, chain)
	}
	if backlogBudget != 0 {
		if peak := env.A.Stats().MaxRetired(); peak > backlogBudget {
			tb.Errorf("peak retired backlog %d exceeds budget %d with no fault injected", peak, backlogBudget)
		}
	}
}

// runRounds executes rounds of concurrent operations with a barrier between
// rounds and returns the per-round history windows, ready for the chained
// linearizability checker.
func runRounds(tb testing.TB, n, rounds, opsPerThread int,
	op func(tid, round, i int, rec *hist.Recorder)) [][]hist.Op {
	tb.Helper()
	rec := hist.NewRecorder(n)
	var windows [][]hist.Op
	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		for tid := 0; tid < n; tid++ {
			wg.Add(1)
			go func(tid int) {
				defer wg.Done()
				for i := 0; i < opsPerThread; i++ {
					op(tid, round, i, rec)
				}
			}(tid)
		}
		wg.Wait()
		windows = append(windows, rec.History())
		rec.Reset()
	}
	return windows
}

// ConcurrentSet runs linearizability-checked concurrent rounds against set.
func ConcurrentSet(tb testing.TB, env *Env, set ds.Set, rounds, opsPerThread, keyRange int) {
	tb.Helper()
	windows := runRounds(tb, env.N, rounds, opsPerThread, func(tid, round, i int, rec *hist.Recorder) {
		r := newRNG(uint64(tid)<<32 + uint64(round)<<16 + uint64(i))
		key := int64(r.intn(keyRange))
		switch r.intn(3) {
		case 0:
			p := rec.Begin(tid, hist.OpInsert, key)
			ok, err := set.Insert(tid, key)
			if err != nil {
				tb.Errorf("T%d insert(%d): %v", tid, key, err)
				return
			}
			rec.End(tid, p, ok, 0)
		case 1:
			p := rec.Begin(tid, hist.OpDelete, key)
			ok, err := set.Delete(tid, key)
			if err != nil {
				tb.Errorf("T%d delete(%d): %v", tid, key, err)
				return
			}
			rec.End(tid, p, ok, 0)
		default:
			p := rec.Begin(tid, hist.OpContains, key)
			ok, err := set.Contains(tid, key)
			if err != nil {
				tb.Errorf("T%d contains(%d): %v", tid, key, err)
				return
			}
			rec.End(tid, p, ok, 0)
		}
	})
	if tb.Failed() {
		return
	}
	ok, err := hist.CheckChained(hist.SetSpec{}, windows)
	if err != nil {
		tb.Fatalf("linearizability check: %v", err)
	}
	if !ok {
		tb.Errorf("%s over %s: history not linearizable", set.Name(), env.S.Name())
	}
}

// ConcurrentQueue runs linearizability-checked concurrent rounds against q.
func ConcurrentQueue(tb testing.TB, env *Env, q ds.Queue, rounds, opsPerThread int) {
	tb.Helper()
	windows := runRounds(tb, env.N, rounds, opsPerThread, func(tid, round, i int, rec *hist.Recorder) {
		r := newRNG(uint64(tid)<<32 + uint64(round)<<16 + uint64(i) + 7)
		if r.intn(2) == 0 {
			v := int64(r.next() % 1 << 20)
			p := rec.Begin(tid, hist.OpEnqueue, v)
			if err := q.Enqueue(tid, v); err != nil {
				tb.Errorf("T%d enqueue: %v", tid, err)
				return
			}
			rec.End(tid, p, true, 0)
		} else {
			p := rec.Begin(tid, hist.OpDequeue, 0)
			v, ok, err := q.Dequeue(tid)
			if err != nil {
				tb.Errorf("T%d dequeue: %v", tid, err)
				return
			}
			rec.End(tid, p, ok, v)
		}
	})
	if tb.Failed() {
		return
	}
	ok, err := hist.CheckChained(hist.QueueSpec{}, windows)
	if err != nil {
		tb.Fatalf("linearizability check: %v", err)
	}
	if !ok {
		tb.Errorf("%s over %s: history not linearizable", q.Name(), env.S.Name())
	}
}

// ConcurrentStack runs linearizability-checked concurrent rounds against st.
func ConcurrentStack(tb testing.TB, env *Env, st ds.Stack, rounds, opsPerThread int) {
	tb.Helper()
	windows := runRounds(tb, env.N, rounds, opsPerThread, func(tid, round, i int, rec *hist.Recorder) {
		r := newRNG(uint64(tid)<<32 + uint64(round)<<16 + uint64(i) + 11)
		if r.intn(2) == 0 {
			v := int64(r.next() % 1 << 20)
			p := rec.Begin(tid, hist.OpPush, v)
			if err := st.Push(tid, v); err != nil {
				tb.Errorf("T%d push: %v", tid, err)
				return
			}
			rec.End(tid, p, true, 0)
		} else {
			p := rec.Begin(tid, hist.OpPop, 0)
			v, ok, err := st.Pop(tid)
			if err != nil {
				tb.Errorf("T%d pop: %v", tid, err)
				return
			}
			rec.End(tid, p, ok, v)
		}
	})
	if tb.Failed() {
		return
	}
	ok, err := hist.CheckChained(hist.StackSpec{}, windows)
	if err != nil {
		tb.Fatalf("linearizability check: %v", err)
	}
	if !ok {
		tb.Errorf("%s over %s: history not linearizable", st.Name(), env.S.Name())
	}
}

// DisjointChurnSet drives heavy concurrent churn with per-thread disjoint
// key partitions (thread t owns keys ≡ t mod N), so the final contents are
// exactly the union of per-thread models despite full concurrency. It
// exercises reclamation far harder than the checked rounds.
func DisjointChurnSet(tb testing.TB, env *Env, set ds.Set, opsPerThread, keyRange int) {
	tb.Helper()
	models := make([]map[int64]bool, env.N)
	var wg sync.WaitGroup
	for tid := 0; tid < env.N; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			model := make(map[int64]bool)
			models[tid] = model
			r := newRNG(uint64(tid) + 1000)
			for i := 0; i < opsPerThread; i++ {
				key := int64(r.intn(keyRange)*env.N + tid)
				switch r.intn(3) {
				case 0:
					ok, err := set.Insert(tid, key)
					if err != nil {
						tb.Errorf("T%d insert(%d): %v", tid, key, err)
						return
					}
					if ok == model[key] {
						tb.Errorf("T%d insert(%d) = %v with model %v", tid, key, ok, model[key])
						return
					}
					model[key] = true
				case 1:
					ok, err := set.Delete(tid, key)
					if err != nil {
						tb.Errorf("T%d delete(%d): %v", tid, key, err)
						return
					}
					if ok != model[key] {
						tb.Errorf("T%d delete(%d) = %v with model %v", tid, key, ok, model[key])
						return
					}
					delete(model, key)
				default:
					ok, err := set.Contains(tid, key)
					if err != nil {
						tb.Errorf("T%d contains(%d): %v", tid, key, err)
						return
					}
					if ok != model[key] {
						tb.Errorf("T%d contains(%d) = %v with model %v", tid, key, ok, model[key])
						return
					}
				}
			}
		}(tid)
	}
	wg.Wait()
	if tb.Failed() {
		return
	}
	want := make(map[int64]bool)
	for _, m := range models {
		for k := range m {
			want[k] = true
		}
	}
	for key := range want {
		ok, err := set.Contains(0, key)
		if err != nil {
			tb.Fatalf("final contains(%d): %v", key, err)
		}
		if !ok {
			tb.Errorf("final contents missing %d", key)
		}
	}
	if ks, ok := set.(interface{ Keys() []int64 }); ok {
		keys := ks.Keys()
		if len(keys) != len(want) {
			tb.Errorf("final size %d, union of models %d", len(keys), len(want))
		}
	}
}
