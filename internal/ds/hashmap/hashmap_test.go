package hashmap_test

import (
	"testing"

	"repro/internal/ds"
	"repro/internal/ds/dstest"
	"repro/internal/ds/hashmap"
	"repro/internal/mem"
)

func TestSuiteHarrisBuckets(t *testing.T)  { dstest.RunSetSuite(t, "hashmap-harris") }
func TestSuiteMichaelBuckets(t *testing.T) { dstest.RunSetSuite(t, "hashmap-michael") }

// TestBucketKind rejects unknown bucket kinds.
func TestBucketKind(t *testing.T) {
	env := dstest.NewEnv(t, "ebr", 1, 1<<10, 2, mem.Reuse)
	if _, err := hashmap.New(env.S, ds.Options{}, 4, "btree"); err == nil {
		t.Fatal("expected error for unknown bucket kind")
	}
}

// TestKeysUnion checks Keys() aggregates every bucket.
func TestKeysUnion(t *testing.T) {
	env := dstest.NewEnv(t, "ebr", 1, 1<<12, 2, mem.Reuse)
	m, err := hashmap.New(env.S, ds.Options{}, 8, "michael")
	if err != nil {
		t.Fatal(err)
	}
	for k := int64(0); k < 100; k++ {
		if ok, err := m.Insert(0, k); err != nil || !ok {
			t.Fatalf("insert(%d) = %v, %v", k, ok, err)
		}
	}
	if got := len(m.Keys()); got != 100 {
		t.Fatalf("Keys() returned %d keys, want 100", got)
	}
	env.AssertSafe(t)
}
