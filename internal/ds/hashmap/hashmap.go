// Package hashmap implements a fixed-size lock-free hash set: an array of
// buckets, each an independent Harris or Michael linked-list.
//
// The map exists for workload realism in the throughput experiments
// (short chains, high locality, the setting the cited schemes were
// evaluated in) and to show that applicability verdicts transfer
// compositionally: a bucket built on Harris's list inherits Harris's
// incompatibility with the protection-based schemes, a bucket built on
// Michael's list does not.
package hashmap

import (
	"fmt"

	"repro/internal/ds"
	"repro/internal/ds/harris"
	"repro/internal/ds/michael"
	"repro/internal/smr"
)

// Map is a fixed-bucket-count lock-free hash set.
type Map struct {
	name    string
	s       smr.Scheme
	buckets []ds.Set
}

var _ ds.Set = (*Map)(nil)

// New builds a hash set with nbuckets buckets over scheme s. kind selects
// the bucket implementation: "harris" or "michael".
func New(s smr.Scheme, opt ds.Options, nbuckets int, kind string) (*Map, error) {
	if nbuckets <= 0 {
		nbuckets = 16
	}
	m := &Map{name: "hashmap-" + kind, s: s, buckets: make([]ds.Set, nbuckets)}
	for i := range m.buckets {
		var b ds.Set
		var err error
		switch kind {
		case "harris":
			b, err = harris.New(s, opt)
		case "michael":
			b, err = michael.New(s, opt)
		default:
			return nil, fmt.Errorf("hashmap: unknown bucket kind %q", kind)
		}
		if err != nil {
			return nil, err
		}
		m.buckets[i] = b
	}
	return m, nil
}

// Name implements ds.Set.
func (m *Map) Name() string { return m.name }

// bucket hashes key to a bucket (Fibonacci hashing).
func (m *Map) bucket(key int64) ds.Set {
	h := uint64(key) * 0x9e3779b97f4a7c15
	return m.buckets[h%uint64(len(m.buckets))]
}

// Insert implements ds.Set.
func (m *Map) Insert(tid int, key int64) (bool, error) { return m.bucket(key).Insert(tid, key) }

// Delete implements ds.Set.
func (m *Map) Delete(tid int, key int64) (bool, error) { return m.bucket(key).Delete(tid, key) }

// Contains implements ds.Set.
func (m *Map) Contains(tid int, key int64) (bool, error) { return m.bucket(key).Contains(tid, key) }

var (
	_ ds.Iterator     = (*Map)(nil)
	_ ds.TravReporter = (*Map)(nil)
	_ ds.BatchSet     = (*Map)(nil)
	_ ds.StepSet      = (*Map)(nil)
)

// StepOp implements ds.StepSet by delegating to the target bucket's
// unbracketed op — all buckets share the map's single SMR domain, so a
// caller-held bracket covers whichever bucket the key routes to.
func (m *Map) StepOp(tid int, kind ds.BatchKind, key int64) (bool, error) {
	b, ok := m.bucket(key).(ds.StepSet)
	if !ok {
		return false, ds.ErrCorrupted // unreachable: both bucket kinds implement StepSet
	}
	return b.StepOp(tid, kind, key)
}

// ApplyBatch implements ds.BatchSet: one fused window over the shared
// scheme, stepping each op into its bucket. Cross-op predecessor
// caching does not apply (consecutive sorted keys usually hash to
// different buckets), so the win here is bracket amortization over
// short chains.
func (m *Map) ApplyBatch(tid int, ops []ds.BatchOp, res []ds.BatchResult) uint64 {
	return ds.RunBatch(m.s, m, tid, ops, res)
}

// Iterate implements ds.Iterator by sweeping the buckets in index order.
// Emission is monotonic per bucket rather than globally ascending; since a
// key hashes to exactly one bucket, the no-duplicates and
// every-persistent-key guarantees still hold map-wide.
func (m *Map) Iterate(tid int, fn func(key int64) bool) error {
	stopped := false
	for _, b := range m.buckets {
		it, ok := b.(ds.Iterator)
		if !ok {
			return ds.ErrCorrupted // unreachable: both bucket kinds implement Iterator
		}
		err := it.Iterate(tid, func(k int64) bool {
			if !fn(k) {
				stopped = true
				return false
			}
			return true
		})
		if err != nil || stopped {
			return err
		}
	}
	return nil
}

// TravSnapshot implements ds.TravReporter by merging the buckets'
// traversal counters.
func (m *Map) TravSnapshot() ds.TravSnapshot {
	var s ds.TravSnapshot
	for _, b := range m.buckets {
		if tr, ok := b.(ds.TravReporter); ok {
			s = s.Merge(tr.TravSnapshot())
		}
	}
	return s
}

// Keys returns all unmarked keys; quiescent use only.
func (m *Map) Keys() []int64 {
	var keys []int64
	for _, b := range m.buckets {
		switch l := b.(type) {
		case *harris.List:
			keys = append(keys, l.Keys()...)
		case *michael.List:
			keys = append(keys, l.Keys()...)
		}
	}
	return keys
}
