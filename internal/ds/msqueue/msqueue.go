// Package msqueue implements the Michael & Scott lock-free FIFO queue.
//
// The queue broadens the applicability experiments beyond set objects: it
// retires nodes from the *front* (a dequeued dummy is retired by the
// dequeuer) and never traverses retired nodes, so every scheme in the
// repository — including the protection-based family — is applicable to
// it. The global Head and Tail pointers live in a never-retired anchor
// node so that they, too, are accessed through the scheme barriers.
package msqueue

import (
	"repro/internal/ds"
	"repro/internal/mem"
	"repro/internal/smr"
)

// Anchor node layout: word 0 = Head, word 1 = Tail.
const (
	wHead = 0
	wTail = 1
)

// Node layout: word 0 = value, word 1 = next.
const (
	wVal  = 0
	wNext = 1
)

// Queue is the Michael & Scott queue.
type Queue struct {
	ds.Instr
	s      smr.Scheme
	anchor mem.Ref
}

var _ ds.Queue = (*Queue)(nil)

// New builds an empty queue (one dummy node) over scheme s.
func New(s smr.Scheme, opt ds.Options) (*Queue, error) {
	q := &Queue{Instr: ds.Instr{Opt: opt, A: s.Heap()}, s: s}
	ds.RegisterLinks(s, []int{wNext})
	anchor, err := ds.NewSentinel(s, 0, 0)
	if err != nil {
		return nil, err
	}
	dummy, err := ds.NewSentinel(s, 0, 0)
	if err != nil {
		return nil, err
	}
	q.anchor = anchor
	if !s.WritePtr(0, anchor, wHead, dummy) || !s.WritePtr(0, anchor, wTail, dummy) {
		return nil, ds.ErrCorrupted
	}
	return q, nil
}

// Name implements ds.Queue.
func (q *Queue) Name() string { return "msqueue" }

const maxAttempts = 1 << 22

// Enqueue implements ds.Queue.
func (q *Queue) Enqueue(tid int, v int64) error {
	q.s.BeginOp(tid)
	defer q.s.EndOp(tid)
	n, err := q.s.Alloc(tid)
	if err != nil {
		return err
	}
	q.s.Write(tid, n, wVal, uint64(v))
	q.s.WritePtr(tid, n, wNext, mem.NilRef)
	if err := q.A.MarkShared(n); err != nil {
		return err
	}
	for i := 0; i < maxAttempts; i++ {
		q.Phase(tid, ds.PhaseRead)
		tail, ok := q.s.ReadPtr(tid, 0, q.anchor, wTail)
		if !ok {
			continue
		}
		next, ok := q.s.ReadPtr(tid, 1, tail, wNext)
		if !ok {
			continue
		}
		if !next.IsNil() {
			// Tail lags; help swing it.
			q.s.CASPtr(tid, q.anchor, wTail, tail, next)
			continue
		}
		if !q.s.Reserve(tid, tail) {
			continue
		}
		q.Phase(tid, ds.PhaseWrite)
		swapped, ok := q.s.CASPtr(tid, tail, wNext, mem.NilRef, n)
		if !ok || !swapped {
			continue
		}
		q.s.CASPtr(tid, q.anchor, wTail, tail, n)
		return nil
	}
	return ds.ErrCorrupted
}

// Dequeue implements ds.Queue. The dequeued value travels in the *new*
// dummy; the old dummy is retired by the successful dequeuer.
func (q *Queue) Dequeue(tid int) (int64, bool, error) {
	q.s.BeginOp(tid)
	defer q.s.EndOp(tid)
	for i := 0; i < maxAttempts; i++ {
		q.Phase(tid, ds.PhaseRead)
		head, ok := q.s.ReadPtr(tid, 0, q.anchor, wHead)
		if !ok {
			continue
		}
		tail, ok := q.s.ReadPtr(tid, 1, q.anchor, wTail)
		if !ok {
			continue
		}
		next, ok := q.s.ReadPtr(tid, 2, head, wNext)
		if !ok {
			continue
		}
		// Validate head is still head (Michael & Scott's consistency
		// check; with HP this also certifies the protection).
		h2, ok := q.s.Read(tid, q.anchor, wHead)
		if !ok || mem.Ref(h2) != head {
			continue
		}
		if head == tail {
			if next.IsNil() {
				return 0, false, nil // empty
			}
			q.s.CASPtr(tid, q.anchor, wTail, tail, next)
			continue
		}
		if next.IsNil() {
			continue // transient: head != tail but next not yet visible
		}
		v, ok := q.s.Read(tid, next, wVal)
		if !ok {
			continue
		}
		if !q.s.Reserve(tid, head, next) {
			continue
		}
		q.Phase(tid, ds.PhaseWrite)
		swapped, ok := q.s.CASPtr(tid, q.anchor, wHead, head, next)
		if !ok || !swapped {
			continue
		}
		q.s.Retire(tid, head)
		return int64(v), true, nil
	}
	return 0, false, ds.ErrCorrupted
}

// Drain returns the queue contents without barriers; quiescent use only.
func (q *Queue) Drain() []int64 {
	var vals []int64
	a := q.A
	h, _ := a.Load(0, q.anchor, wHead)
	cur := mem.Ref(h)
	for {
		next, err := a.Load(0, cur, wNext)
		if err != nil || mem.Ref(next).IsNil() {
			return vals
		}
		cur = mem.Ref(next)
		v, err := a.Load(0, cur, wVal)
		if err != nil {
			return vals
		}
		vals = append(vals, int64(v))
	}
}
