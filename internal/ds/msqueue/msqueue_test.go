package msqueue_test

import (
	"testing"

	"repro/internal/ds"
	"repro/internal/ds/dstest"
	"repro/internal/ds/msqueue"
	"repro/internal/mem"
)

func TestSuite(t *testing.T) { dstest.RunQueueSuite(t, "msqueue") }

// TestFIFOOrder checks strict FIFO delivery under a single producer and a
// single consumer running concurrently.
func TestFIFOOrder(t *testing.T) {
	env := dstest.NewEnv(t, "hp", 2, 1<<14, 2, mem.Reuse)
	q, err := msqueue.New(env.S, ds.Options{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 5000
	done := make(chan error, 1)
	go func() {
		for i := int64(0); i < n; i++ {
			if err := q.Enqueue(0, i); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	var next int64
	for next < n {
		v, ok, err := q.Dequeue(1)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			continue
		}
		if v != next {
			t.Fatalf("dequeued %d, want %d", v, next)
		}
		next++
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := q.Dequeue(1); ok {
		t.Fatal("queue should be empty")
	}
	env.AssertSafe(t)
}

// TestEmptyDequeue checks the empty-queue fast path repeatedly.
func TestEmptyDequeue(t *testing.T) {
	env := dstest.NewEnv(t, "ebr", 1, 1<<10, 2, mem.Reuse)
	q, err := msqueue.New(env.S, ds.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, ok, err := q.Dequeue(0); err != nil || ok {
			t.Fatalf("dequeue on empty = ok=%v err=%v", ok, err)
		}
	}
	env.AssertSafe(t)
}
