// Package repro is a reproduction of Sheffi & Petrank, "The ERA Theorem
// for Safe Memory Reclamation" (PPoPP 2023, arXiv:2211.04351), as a
// runnable Go library.
//
// The paper proves that a safe memory reclamation (SMR) scheme can provide
// at most two of three properties: Ease of integration (Definition 5.3),
// Robustness (Definitions 5.1–5.2), and wide Applicability (Definitions
// 5.4–5.6). This repository makes every piece of that statement
// executable:
//
//   - a simulated manually-managed heap (tagged references, node
//     life-cycles, unsafe-access detection) standing in for the paper's
//     memory model on top of Go's garbage-collected runtime;
//   - eleven reclamation schemes (EBR, QSBR, HP, IBR, HE, VBR, NBR, PEBR,
//     RC, a leak baseline and an unsafe immediate-free baseline) behind
//     one barrier interface;
//   - seven lock-free data structures written once against that
//     interface, with Harris's linked-list — the theorem's central
//     object — among them;
//   - the paper's two proof executions (Figure 1 and Figure 2) as
//     deterministic, replayable scripts;
//   - monitors and checkers for each formal definition, assembled into
//     the ERA matrix whose empty all-yes row is Theorem 6.1.
//
// This facade re-exports the user-facing surface; the implementation
// lives in the internal packages (see DESIGN.md for the inventory).
package repro

import (
	"io"
	"time"

	"repro/internal/adapt"
	"repro/internal/bench"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/core/adversary"
	"repro/internal/ds"
	"repro/internal/ds/registry"
	"repro/internal/exec"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/obs/rec"
	"repro/internal/resil"
	"repro/internal/smr"
	"repro/internal/smr/all"
	"repro/internal/store"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// Heap is the simulated manually-managed heap (see internal/mem).
type Heap = mem.Arena

// HeapConfig configures a Heap.
type HeapConfig = mem.Config

// Ref is a tagged node reference.
type Ref = mem.Ref

// Reclaim modes: Reuse recycles slots in program space; Unmap returns
// them to system space, turning dangling accesses into simulated
// segmentation faults.
const (
	Reuse = mem.Reuse
	Unmap = mem.Unmap
)

// NewHeap builds a heap. Pass MetaWords: repro.SchemeMetaWords so any
// scheme can attach its per-node metadata.
func NewHeap(cfg HeapConfig) *Heap { return mem.NewArena(cfg) }

// SchemeMetaWords is the per-node scheme-metadata word count every scheme
// in the repository fits in.
const SchemeMetaWords = smr.MetaWords

// Scheme is the uniform SMR interface of Definition 5.3: begin/end
// brackets, alloc/retire replacements, and guarded primitive accesses.
type Scheme = smr.Scheme

// SchemeProps is a scheme's static property sheet.
type SchemeProps = smr.Props

// NewScheme builds the named scheme ("ebr", "qsbr", "hp", "ibr", "he",
// "vbr", "nbr", "rc", "none", "unsafefree") over heap h for n threads.
func NewScheme(name string, h *Heap, n int) (Scheme, error) {
	return all.New(name, h, n, 0)
}

// SchemeNames lists every registered scheme.
func SchemeNames() []string { return all.Names() }

// StructureNames lists every registered data structure.
func StructureNames() []string { return registry.Names() }

// Set is the integer-set abstract data type.
type Set = ds.Set

// NewSet builds the named set structure ("harris", "michael", "skiplist",
// "hashmap-harris", "hashmap-michael") over scheme s. The heap must have
// been built with at least MaxPayloadWords payload words for the skip
// list; plain lists need two.
func NewSet(structure string, s Scheme) (Set, error) {
	info, err := registry.Get(structure)
	if err != nil {
		return nil, err
	}
	if info.NewSet == nil {
		return nil, errNotASet(structure)
	}
	return info.NewSet(s, ds.Options{})
}

type errNotASet string

func (e errNotASet) Error() string { return "repro: " + string(e) + " is not a set structure" }

// MaxPayloadWords is the payload-word requirement of the largest
// structure (the skip list).
const MaxPayloadWords = registry.MaxPayloadWords

// AdversaryOutcome is the structured result of a scripted execution.
type AdversaryOutcome = adversary.Outcome

// RunFigure1 replays the Theorem 6.1 lower-bound execution for a scheme
// with churn length K.
func RunFigure1(scheme string, k int) (*AdversaryOutcome, error) {
	return adversary.Figure1(scheme, k, mem.Unmap)
}

// RunFigure2 replays the Appendix E incompatibility execution.
func RunFigure2(scheme string) (*AdversaryOutcome, error) {
	return adversary.Figure2(scheme, mem.Unmap)
}

// WorkloadNames lists the registered key distributions.
func WorkloadNames() []string { return workload.DistNames() }

// ScheduleNames lists the registered op-mix schedules.
func ScheduleNames() []string { return workload.ScheduleNames() }

// BenchConfig sizes a throughput run; Workload and Schedule select the
// scenario by name.
type BenchConfig = bench.ThroughputConfig

// BenchRow is one throughput measurement with latency percentiles.
type BenchRow = bench.ThroughputRow

// RunThroughput measures one (scheme, structure) pair under the configured
// workload.
func RunThroughput(scheme, structure string, cfg BenchConfig) (BenchRow, error) {
	return bench.Throughput(scheme, structure, cfg)
}

// WriteBenchArtifact emits rows as the machine-readable JSON benchmark
// artifact format (BENCH_*.json).
func WriteBenchArtifact(w io.Writer, experiment string, rows []BenchRow) error {
	return bench.WriteJSONReport(w, experiment, rows)
}

// Store is the sharded multi-tenant key-value service: keys hash across
// shards, each shard owning its own heap, data structure, and SMR domain,
// so reclamation-scheme choice is a per-shard deployment decision (see
// internal/store).
type Store = store.Store

// StoreConfig assembles a Store.
type StoreConfig = store.Config

// StoreShardSpec configures one shard (scheme, structure, workers).
type StoreShardSpec = store.ShardSpec

// StoreOp is one batched service operation; StoreResult its outcome.
type StoreOp = store.Op

// StoreResult is one service operation's outcome.
type StoreResult = store.Result

// StoreStats is the aggregated service-level counter view.
type StoreStats = store.Stats

// Submission errors of the service layer.
var (
	ErrStoreClosed = store.ErrClosed
	ErrShardClosed = store.ErrShardClosed
)

// NewStore builds the sharded service and starts its shard workers.
// Store.MigrateShard live-migrates a shard onto a different reclamation
// scheme (drain, snapshot, rebuild, replay, swap) — the primitive the
// adaptive controller drives.
func NewStore(cfg StoreConfig) (*Store, error) { return store.New(cfg) }

// UniformShards builds the homogeneous n-shard spec list.
func UniformShards(n int, spec StoreShardSpec) []StoreShardSpec { return store.Uniform(n, spec) }

// ServiceConfig sizes the closed-loop sharded-service experiment.
type ServiceConfig = bench.ServiceConfig

// ServiceResult is the service measurement: aggregate row plus per-shard
// breakdown.
type ServiceResult = bench.ServiceResult

// RunService drives the sharded store with a closed-loop client fleet
// (the eraserve command is a thin wrapper over this).
func RunService(cfg ServiceConfig) (ServiceResult, error) { return bench.RunService(cfg) }

// WriteServiceArtifact emits the service measurement as the
// machine-readable BENCH_service.json artifact format.
func WriteServiceArtifact(w io.Writer, res ServiceResult) error {
	return bench.WriteServiceReport(w, res)
}

// Executor is the pipelined scatter-gather execution layer over a Store:
// cross-shard multi-key and range requests compile into per-shard
// scatter legs, submit asynchronously (no goroutine blocks per in-flight
// leg), and merge deterministically on the shard worker that completes
// the last leg. Verdict-driven admission control queues or sheds legs
// bound for degraded shards, and a per-leg completion budget turns a
// fault-parked shard into typed partial results instead of a hung
// request (see internal/exec).
type Executor = exec.Executor

// ExecConfig assembles an Executor: queue depth, pump pool, leg budget,
// admission signal, and flight-recorder wiring.
type ExecConfig = exec.Config

// ExecHandle is an in-flight cross-shard request: Done/Wait/Result for
// completion, with the merged ExecResult carrying per-key outcomes and
// typed per-shard partial failures.
type ExecHandle = exec.Handle

// ExecResult is a merged scatter-gather outcome. Partial() reports
// whether any leg failed wholesale; ShardErrs carries the typed
// per-shard reasons.
type ExecResult = exec.Result

// ExecShardError is one shard leg's typed failure; errors.Is matches
// ErrExecShed / ErrExecLegStalled through it.
type ExecShardError = exec.ShardError

// ExecStats is the executor's service counters: submitted, completed,
// partial, plus per-shard scatter/queue/shed/timeout accounting.
type ExecStats = exec.Stats

// Executor-layer sentinel errors.
var (
	ErrExecClosed     = exec.ErrClosed
	ErrExecShed       = exec.ErrShed
	ErrExecLegStalled = exec.ErrLegStalled
)

// NewExecutor builds the scatter-gather layer over a running store.
func NewExecutor(st *Store, cfg ExecConfig) (*Executor, error) { return exec.New(st, cfg) }

// ExecVerdictAdmission adapts a telemetry monitor into the executor's
// admission signal: a shard whose live robustness verdict degrades stops
// receiving blocking backpressure and starts queueing or shedding.
// Assign one to ExecConfig.Admission.
type ExecVerdictAdmission = exec.VerdictAdmission

// PipelineConfig sizes the pipelined-execution experiment: the blocking
// vs pipelined A/B plus the partial-failure chaos campaign.
type PipelineConfig = bench.PipelineConfig

// PipelineResult is the experiment outcome: both arm rows, the chaos
// campaign row, and the headline verdicts (pipelined beats blocking,
// partial-failure chains closed).
type PipelineResult = bench.PipelineResult

// RunPipeline runs the pipelined-execution experiment (the erabench
// -exp pipeline experiment is a thin wrapper over this).
func RunPipeline(cfg PipelineConfig) (PipelineResult, error) { return bench.RunPipeline(cfg) }

// WritePipelineArtifact emits the experiment as the machine-readable
// BENCH_pipeline.json artifact format.
func WritePipelineArtifact(w io.Writer, res PipelineResult) error {
	return bench.WritePipelineReport(w, res)
}

// ResilClient is the resilience policy layer over one executor:
// typed-error-aware retries under a store-wide budget, hedged legs at a
// live-tracked quantile delay, verdict-fed per-shard circuit breakers,
// and a settled-leg latency feed for SLO verdicts (see internal/resil).
type ResilClient = resil.Client

// ResilConfig assembles a ResilClient: retry shape and budget, hedge
// quantile, breaker thresholds, verdict feed, and recorder wiring.
type ResilConfig = resil.Config

// ResilStats is the client's resilience ledger: retries, recoveries,
// budget refusals, hedges and wasted work, per-shard breaker snapshots,
// with Amplification() as the dispatched-over-offered ratio.
type ResilStats = resil.Stats

// BreakerState is a per-shard circuit breaker's position
// (closed/open/half-open); BreakerStats one shard's breaker snapshot.
type BreakerState = resil.BreakerState

type BreakerStats = resil.BreakerStats

// RetryError wraps a shard's final error after the retry policy gave
// up; errors.Is/As keep matching the underlying typed failure through
// it.
type RetryError = resil.RetryError

// ErrBreakerOpen is the typed fast-fail an open breaker answers with.
var ErrBreakerOpen = resil.ErrBreakerOpen

// NewResilClient wraps a running store's scatter-gather path in the
// resilience policies.
func NewResilClient(st *Store, execCfg ExecConfig, cfg ResilConfig) (*ResilClient, error) {
	return resil.New(st, execCfg, cfg)
}

// ResilConfigExp sizes the resilience experiment: the naive vs
// resilient goodput arms under staggered chaos, the hedged-tail pulse
// pass, and the amplification bound.
type ResilConfigExp = bench.ResilConfig

// ResilResult is the experiment outcome: both arm rows, the hedge rows,
// and the headline verdicts (goodput recovered, hedges bound the tail,
// amplification bounded).
type ResilResult = bench.ResilResult

// RunResil runs the resilience experiment (the erabench -exp resil
// experiment is a thin wrapper over this).
func RunResil(cfg ResilConfigExp) (ResilResult, error) { return bench.RunResil(cfg) }

// WriteResilArtifact emits the experiment as the machine-readable
// BENCH_resil.json artifact format.
func WriteResilArtifact(w io.Writer, res ResilResult) error {
	return bench.WriteResilReport(w, res)
}

// ChaosConfig sizes the chaos-injection robustness audit: a gated store
// with one shard per scheme, fault injection on a schedule, and telemetry
// fitted into per-scheme verdicts (see internal/chaos and
// internal/telemetry).
type ChaosConfig = bench.ChaosConfig

// ChaosResult is the audit outcome: verdict rows, the fault episode log,
// and the client-side aggregate.
type ChaosResult = bench.ChaosResult

// ChaosRow is one scheme shard's verdict: declared robustness class
// versus the class its faulted telemetry evidences.
type ChaosRow = bench.ChaosRow

// RunChaos runs the chaos experiment (the erachaos command is a thin
// wrapper over this).
func RunChaos(cfg ChaosConfig) (ChaosResult, error) { return bench.RunChaos(cfg) }

// WriteChaosArtifact emits the audit as the machine-readable
// BENCH_chaos.json artifact format.
func WriteChaosArtifact(w io.Writer, res ChaosResult) error {
	return bench.WriteChaosReport(w, res)
}

// FaultNames lists the registered chaos faults.
func FaultNames() []string { return chaos.Names() }

// TelemetryMonitor is the online robustness classifier: feed it sampled
// points (wire Monitor.Observe as the sampler's OnSample hook) and read
// live per-domain verdicts mid-run (see internal/telemetry).
type TelemetryMonitor = telemetry.Monitor

// TelemetryDomain describes one monitored domain for the classifier.
type TelemetryDomain = telemetry.Domain

// NewTelemetryMonitor builds the online classifier over the domains.
func NewTelemetryMonitor(window int, domains []TelemetryDomain) *TelemetryMonitor {
	return telemetry.NewMonitor(telemetry.MonitorConfig{Window: window}, domains)
}

// AdaptConfig tunes the adaptive-reclamation controller: the migration
// ladder, decision cadence, and hysteresis (see internal/adapt).
type AdaptConfig = adapt.Config

// AdaptEpisode is one recorded live migration decision.
type AdaptEpisode = adapt.Episode

// AdaptController walks each store shard along a scheme ladder as its
// live robustness verdicts demand.
type AdaptController = adapt.Controller

// NewAdaptController builds the controller over a store and the monitor
// watching it (monitor domain i must describe store shard i).
func NewAdaptController(cfg AdaptConfig, st *Store, mon *TelemetryMonitor) (*AdaptController, error) {
	return adapt.New(cfg, st, mon)
}

// AdaptiveConfig sizes the static-vs-adaptive reclamation experiment.
type AdaptiveConfig = bench.AdaptiveConfig

// AdaptiveResult is the experiment outcome: the static control arm, the
// adaptive arm with its migration episode log, and the headline
// comparison.
type AdaptiveResult = bench.AdaptiveResult

// RunAdaptive runs the static control and the adaptive arm back to back
// under the configured chaos faults (the erabench -exp adaptive
// experiment is a thin wrapper over this).
func RunAdaptive(cfg AdaptiveConfig) (AdaptiveResult, error) { return bench.RunAdaptive(cfg) }

// WriteAdaptiveArtifact emits the experiment as the machine-readable
// BENCH_adaptive.json artifact format.
func WriteAdaptiveArtifact(w io.Writer, res AdaptiveResult) error {
	return bench.WriteAdaptiveReport(w, res)
}

// SetIterator is the optional O(live-keys) iteration surface every
// registry set structure implements: a quiescent shard enumerates its
// exact contents, a concurrently-mutated one every persistently-present
// key, and no key is ever reported twice in a pass (see internal/ds).
// Store migration snapshots run on it.
type SetIterator = ds.Iterator

// TravSnapshot is a structure's traversal-counter snapshot: steps,
// restarts (head restarts separately), step-budget guard trips, and the
// worst single-operation traversal.
type TravSnapshot = ds.TravSnapshot

// ErrTraversalGuard is the sentinel inside the typed error a traversal
// returns after exhausting its step budget (a livelocked or corrupted
// walk made detectable instead of a hang).
var ErrTraversalGuard = ds.ErrTraversalGuard

// TraverseConfig sizes the traversal hot-path experiment: the
// head-restart vs bounded-restart churn storm and the Contains-scan vs
// iterator migration-snapshot pair.
type TraverseConfig = bench.TraverseConfig

// TraverseResult is the experiment outcome: both storm arms, both
// snapshot arms, and the headline swap-window improvement.
type TraverseResult = bench.TraverseResult

// RunTraverse runs the traversal experiment (the erabench -exp traverse
// experiment is a thin wrapper over this).
func RunTraverse(cfg TraverseConfig) (TraverseResult, error) { return bench.RunTraverse(cfg) }

// WriteTraverseArtifact emits the experiment as the machine-readable
// BENCH_traverse.json artifact format.
func WriteTraverseArtifact(w io.Writer, res TraverseResult) error {
	return bench.WriteTraverseReport(w, res)
}

// FusedWindow is the amortized SMR bracket: BeginFusedOps announces the
// bracket once, Step renews it every DefaultFusedWindow ops (reporting
// true when the caller must invalidate cached position), EndOps closes
// it. Between renewals a window pins at most one reclamation epoch — the
// same bound the per-op bracket gives, paid once per window instead of
// once per operation (see internal/smr).
type FusedWindow = smr.Window

// DefaultFusedWindow is the re-bracket cadence Step applies when
// BeginFusedOps is given a non-positive window.
const DefaultFusedWindow = smr.DefaultWindow

// BeginFusedOps opens an amortized bracket on scheme s for thread tid,
// renewing every k ops (k <= 0 selects DefaultFusedWindow).
func BeginFusedOps(s Scheme, tid, k int) FusedWindow { return smr.BeginOps(s, tid, k) }

// BatchSet is the optional fused-execution surface a registry set
// structure implements: ApplyBatch serves a key-sorted run of point ops
// under one amortized bracket, reusing validated list position across
// consecutive ops (see internal/ds).
type BatchSet = ds.BatchSet

// BatchSetOp is one fused point operation; BatchSetResult its outcome.
type BatchSetOp = ds.BatchOp

// BatchSetResult is one fused point operation's outcome.
type BatchSetResult = ds.BatchResult

// BatchSetKind selects a fused op's verb.
type BatchSetKind = ds.BatchKind

// Fused op verbs, mirroring the workload encoding.
const (
	BatchContains = ds.BatchContains
	BatchInsert   = ds.BatchInsert
	BatchDelete   = ds.BatchDelete
)

// RecycleScanKeys returns a scan-result key buffer to the store's pool
// once the caller is done with it, keeping repeated range traffic off
// the allocator (see internal/store).
func RecycleScanKeys(keys []int64) { store.RecycleScanKeys(keys) }

// BatchConfig sizes the batch-fusion experiment: fused vs per-op-bracket
// arms across schemes and batch sizes, the zero-alloc spine count, and
// the parked-worker backlog comparison.
type BatchConfig = bench.BatchConfig

// BatchResult is the experiment outcome: per-arm rows, the allocs/call
// measurement, the backlog pairs, and the headline verdicts (fused beats
// serial, zero-alloc spine, backlog bounded).
type BatchResult = bench.BatchResult

// RunBatch runs the batch-fusion experiment (the erabench -exp batch
// experiment is a thin wrapper over this).
func RunBatch(cfg BatchConfig) (BatchResult, error) { return bench.RunBatch(cfg) }

// WriteBatchArtifact emits the experiment as the machine-readable
// BENCH_batch.json artifact format.
func WriteBatchArtifact(w io.Writer, res BatchResult) error {
	return bench.WriteBatchReport(w, res)
}

// RobustnessVerdict audits a sampled backlog series against a declared
// robustness class (see internal/telemetry): points are fitted from
// sampler-relative elapsed time `from` onward against the budget of a
// healthy domain.
func RobustnessVerdict(scheme string, declared smr.RobustnessClass, points []TelemetryPoint, from time.Duration, budget TelemetryBudget) telemetry.Verdict {
	return telemetry.Audit(scheme, declared, points, from, budget)
}

// TelemetryPoint is one sampled gauge observation.
type TelemetryPoint = telemetry.Point

// TelemetryBudget frames what "bounded" means for a fit (threads ×
// retire-scan threshold).
type TelemetryBudget = telemetry.Budget

// ERAMatrix is the assembled two-of-three matrix.
type ERAMatrix = core.Matrix

// BuildERAMatrix measures every scheme and assembles the matrix;
// TheoremHolds() reports the paper's main claim.
func BuildERAMatrix(figureK int) (ERAMatrix, error) { return core.BuildMatrix(figureK) }

// Recorder is the low-overhead flight recorder: a striped fixed-capacity
// ring of typed events on one shared run clock, with drop-counted
// overflow (see internal/obs/rec). Hand it to StoreConfig.Recorder,
// chaos engines, samplers, and controllers so every layer writes onto
// the same tape.
type Recorder = rec.Recorder

// RecorderEvent is one typed flight-recorder event.
type RecorderEvent = rec.Event

// RecorderClock is the shared monotonic run clock recorder events are
// stamped against.
type RecorderClock = rec.Clock

// NewRecorder builds a flight recorder stamping events against clock
// (nil starts a fresh run clock) and holding up to perStripe events in
// each of its stripes (perStripe <= 0 selects the default capacity).
func NewRecorder(clock *RecorderClock, perStripe int) *Recorder {
	return rec.NewRecorder(clock, perStripe)
}

// NewRecorderClock starts a run clock at time zero = now.
func NewRecorderClock() *RecorderClock { return rec.NewClock() }

// ObsRegistry names the live components the observability plane exposes;
// any field may be nil.
type ObsRegistry = obs.Registry

// ObsServer is a running observability HTTP server.
type ObsServer = obs.Server

// ServeObs serves the observability plane — Prometheus text on /metrics,
// the flight-recorder stream on /timeline, live profiling under
// /debug/pprof/ — on addr until Close.
func ServeObs(addr string, reg *ObsRegistry) (*ObsServer, error) { return obs.Serve(addr, reg) }

// ObsIncident is one fault's causal chain: fault fired → backlog
// inflection → verdict flip → migration start/swap → heal, with the
// detection and reaction latencies derived from it.
type ObsIncident = obs.Incident

// ObsTimeline is the joined per-shard incident view of a recorded run.
type ObsTimeline = obs.Timeline

// BuildObsTimeline joins a flight-recorder tape and sampled gauge series
// into per-shard incident timelines.
func BuildObsTimeline(events []RecorderEvent, series map[int][]TelemetryPoint, elapsed time.Duration) ObsTimeline {
	return obs.BuildTimeline(events, series, elapsed)
}

// ObsConfig sizes the observability experiment: a faulted adaptive run
// with the flight recorder on, joined into causal timelines, plus the
// recorder-on vs recorder-off overhead comparison.
type ObsConfig = bench.ObsConfig

// ObsResult is the experiment outcome: the timeline, SLO and sampler
// health snapshots, the raw tape, and the overhead verdict.
type ObsResult = bench.ObsResult

// RunObs runs the observability experiment (the erabench -exp obs
// experiment is a thin wrapper over this).
func RunObs(cfg ObsConfig) (ObsResult, error) { return bench.RunObs(cfg) }

// WriteObsArtifact emits the experiment as the machine-readable
// BENCH_obs.json artifact format.
func WriteObsArtifact(w io.Writer, res ObsResult) error {
	return bench.WriteObsReport(w, res)
}

// WriteObsTrace emits the recorded run as a Chrome trace-event file
// (load it in chrome://tracing or Perfetto).
func WriteObsTrace(w io.Writer, res ObsResult) error {
	return bench.WriteObsTrace(w, res)
}

// WriteExperiments runs the full experiment suite to w (the erabench
// command is a thin wrapper over this).
func WriteExperiments(w io.Writer, figureK int) error {
	if err := bench.MatrixReport(w, figureK); err != nil {
		return err
	}
	rows, err := bench.SpaceSweep(figureK)
	if err != nil {
		return err
	}
	bench.WriteSpaceTable(w, rows)
	return nil
}
