// Command eramatrix builds and prints the ERA matrix: for every
// reclamation scheme in the repository, the claimed Ease-of-integration /
// Robustness / Applicability classes and their empirical validation, and
// the Theorem 6.1 verdict that no row achieves all three.
//
// Usage:
//
//	eramatrix [-k churn]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
)

func main() {
	k := flag.Int("k", 600, "Figure 1 churn length used by the measurements")
	flag.Parse()

	m, err := core.BuildMatrix(*k)
	if err != nil {
		fmt.Fprintln(os.Stderr, "eramatrix:", err)
		os.Exit(1)
	}
	fmt.Printf("ERA matrix (Figure 1 churn K=%d; * = measured unbounded, ! = unsafe on Harris)\n\n", m.FigureK)
	fmt.Print(m.String())
	if !m.TheoremHolds() {
		os.Exit(2)
	}
}
