// Command eraserve drives the sharded multi-tenant store with a
// closed-loop client fleet and reports service-level results: per-shard
// throughput and backlog, aggregate rate, and request p50/p99.
//
//	eraserve -shards 8 -scheme hp -ds hashmap -workload zipfian
//	eraserve -shards 4 -scheme hp,ebr -clients 16 -batch 32
//
// -scheme takes a comma-separated list cycled across shards, so
// heterogeneous deployments (the ERA trade-off made per shard: robust HP
// where the backlog bound matters, cheap EBR elsewhere) are one flag
// away. The measurement is written as a machine-readable artifact
// (BENCH_service.json by default; -json "" disables).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/ds/registry"
	"repro/internal/smr/all"
	"repro/internal/workload"
)

func main() {
	shards := flag.Int("shards", 8, "shard count")
	scheme := flag.String("scheme", "ebr",
		fmt.Sprintf("comma-separated reclamation schemes, cycled across shards %v", all.SafeNames()))
	dsName := flag.String("ds", "hashmap", "set structure per shard (ds/registry name)")
	workers := flag.Int("workers", 1, "worker goroutines per shard")
	clients := flag.Int("clients", 0, "closed-loop client goroutines (0 = 2×shards)")
	ops := flag.Int("ops", 20000, "measured operations per client")
	batch := flag.Int("batch", 16, "operations per service request")
	keyRange := flag.Int("keyrange", 8192, "key universe size")
	wl := flag.String("workload", "zipfian",
		fmt.Sprintf("key distribution %v", workload.DistNames()))
	mix := flag.String("mix", "steady",
		fmt.Sprintf("op-mix schedule %v", workload.ScheduleNames()))
	opmix := flag.String("opmix", "50/25/25", "base contains/insert/delete percentages")
	seed := flag.Uint64("seed", 42, "workload seed")
	jsonPath := flag.String("json", "BENCH_service.json", "service artifact path (empty disables)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "eraserve: %v\n", err)
		os.Exit(2)
	}
	// Validate selections up front: a typo must not surface after a long
	// prefill, and an unwritable artifact path not after the run.
	schemes := strings.Split(*scheme, ",")
	for _, s := range schemes {
		if _, err := all.Props(s); err != nil {
			fail(err)
		}
	}
	info, err := registry.Get(*dsName)
	if err != nil {
		fail(err)
	}
	for _, s := range schemes {
		if !registry.Applicable(s, info.Name) {
			fail(fmt.Errorf("scheme %s is not applicable to %s (Appendix E)", s, info.Name))
		}
	}
	if _, err := workload.NewDist(*wl, 2); err != nil {
		fail(err)
	}
	if _, err := workload.NewSchedule(*mix, workload.MixBalanced); err != nil {
		fail(err)
	}
	baseMix, err := workload.ParseMix(*opmix)
	if err != nil {
		fail(err)
	}
	var jsonFile *os.File
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fail(err)
		}
		jsonFile = f
	}

	cfg := bench.ServiceConfig{
		Shards:          *shards,
		Schemes:         schemes,
		Structure:       *dsName,
		WorkersPerShard: *workers,
		Clients:         *clients,
		OpsPerClient:    *ops,
		Batch:           *batch,
		KeyRange:        *keyRange,
		Mix:             baseMix,
		Workload:        *wl,
		Schedule:        *mix,
		Seed:            *seed,
	}
	fmt.Printf("eraserve: %d shards (%s) × %s, workload %s/%s\n",
		*shards, strings.Join(schemes, ","), info.Name, *wl, *mix)
	res, err := bench.RunService(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "eraserve: %v\n", err)
		os.Exit(1)
	}
	bench.WriteServiceTable(os.Stdout, res)
	if jsonFile != nil {
		err := bench.WriteServiceReport(jsonFile, res)
		if cerr := jsonFile.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "eraserve: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
}
