// Command eraserve drives the sharded multi-tenant store with a
// closed-loop client fleet and reports service-level results: per-shard
// throughput and backlog, aggregate rate, and request p50/p99.
//
//	eraserve -shards 8 -scheme hp -ds hashmap -workload zipfian
//	eraserve -shards 4 -scheme hp,ebr -clients 16 -batch 32
//	eraserve -shards 4 -duration 2s            # duration-boxed window
//	eraserve -shards 4 -scheme ebr -adapt      # adaptive reclamation live
//	eraserve -duration 10s -adapt -obs :8080   # live /metrics + /timeline + pprof
//	eraserve -shards 4 -fanout 25              # 25% of fleet on cross-shard fan-out
//	eraserve -fanout 25 -retry -hedge -breaker # resilient fan-out lane
//
// -scheme takes a comma-separated list cycled across shards, so
// heterogeneous deployments (the ERA trade-off made per shard: robust HP
// where the backlog bound matters, cheap EBR elsewhere) are one flag
// away. -duration switches from op-boxed to a wall-clock window (the
// long-lived demo shape); -adapt additionally runs the adaptive
// reclamation controller over the store, escalating/de-escalating each
// shard along -ladder as its live robustness verdicts demand. -fanout
// dedicates a share of the fleet to cross-shard multi-key and range
// requests served by the pipelined scatter-gather executor
// (internal/exec); their latency reports as separate p50/p99 rows
// beside the point-op request percentiles. -retry, -hedge and -breaker
// (each requiring -fanout) route that lane through the resilience
// client (internal/resil) — typed-error-aware retries, p99-delay
// hedged legs, and per-shard circuit breakers — whose counters land in
// the service table and, with -obs, on /metrics as era_resil_*. -obs
// serves the observability plane for the duration of the run: Prometheus
// text on /metrics, the flight-recorder event stream on /timeline, and
// live profiling under /debug/pprof/. The measurement is written as a
// machine-readable artifact (BENCH_service.json by default; -json ""
// disables).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/adapt"
	"repro/internal/bench"
	"repro/internal/ds/registry"
	"repro/internal/smr/all"
	"repro/internal/workload"
)

func main() {
	shards := flag.Int("shards", 8, "shard count")
	scheme := flag.String("scheme", "ebr",
		fmt.Sprintf("comma-separated reclamation schemes, cycled across shards %v", all.SafeNames()))
	dsName := flag.String("ds", "hashmap", "set structure per shard (ds/registry name)")
	workers := flag.Int("workers", 1, "worker goroutines per shard")
	clients := flag.Int("clients", 0, "closed-loop client goroutines (0 = 2×shards)")
	ops := flag.Int("ops", 20000, "measured operations per client (op-boxed mode)")
	batch := flag.Int("batch", 16, "operations per service request (>= 2 engages the fused shard hot path)")
	nofuse := flag.Bool("nofuse", false,
		"serve every op under its own SMR bracket instead of fusing batches (the A/B baseline for -batch sweeps)")
	keyRange := flag.Int("keyrange", 8192, "key universe size")
	duration := flag.Duration("duration", 0,
		"duration-boxed traffic window (0 = op-boxed via -ops; -adapt defaults this to 2s)")
	adaptOn := flag.Bool("adapt", false, "run the adaptive-reclamation controller over the store")
	ladder := flag.String("ladder", "ebr,ibr,hp",
		"adaptive migration ladder, cheapest first (with -adapt)")
	wl := flag.String("workload", "zipfian",
		fmt.Sprintf("key distribution %v", workload.DistNames()))
	mix := flag.String("mix", "steady",
		fmt.Sprintf("op-mix schedule %v", workload.ScheduleNames()))
	opmix := flag.String("opmix", "50/25/25", "base contains/insert/delete percentages")
	seed := flag.Uint64("seed", 42, "workload seed")
	fanout := flag.Int("fanout", 0,
		"dedicate this percentage of the client fleet (min one goroutine) to cross-shard fan-out traffic through the pipelined executor (0 disables)")
	fanoutKeys := flag.Int("fanout-keys", 8, "keys per multi-key fan-out request (with -fanout)")
	retry := flag.Bool("retry", false,
		"route the fan-out lane through the resilience client with typed-error retries (with -fanout)")
	hedge := flag.Bool("hedge", false,
		"hedge slow fan-out legs at the tracked p99 delay (with -fanout)")
	breaker := flag.Bool("breaker", false,
		"run per-shard circuit breakers over the fan-out lane (with -fanout)")
	fanoutSLO := flag.Duration("fanout-slo", 0,
		"per-shard p99 objective over the resilient fan-out lane's leg latencies; with -adapt, breaches feed the verdict plane's SLO dimension (needs -duration and one of -retry/-hedge/-breaker)")
	obsAddr := flag.String("obs", "",
		"serve the live observability plane (/metrics, /timeline, /debug/pprof/) on this address during the run, e.g. :8080")
	jsonPath := flag.String("json", "BENCH_service.json", "service artifact path (empty disables)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "eraserve: %v\n", err)
		os.Exit(2)
	}
	// Validate selections up front: a typo must not surface after a long
	// prefill, and an unwritable artifact path not after the run.
	schemes := strings.Split(*scheme, ",")
	for _, s := range schemes {
		if _, err := all.Props(s); err != nil {
			fail(err)
		}
	}
	info, err := registry.Get(*dsName)
	if err != nil {
		fail(err)
	}
	for _, s := range schemes {
		if !registry.Applicable(s, info.Name) {
			fail(fmt.Errorf("scheme %s is not applicable to %s (Appendix E)", s, info.Name))
		}
	}
	if _, err := workload.NewDist(*wl, 2); err != nil {
		fail(err)
	}
	if _, err := workload.NewSchedule(*mix, workload.MixBalanced); err != nil {
		fail(err)
	}
	baseMix, err := workload.ParseMix(*opmix)
	if err != nil {
		fail(err)
	}
	// -adapt implies a duration window (the controller needs a deadline
	// to live inside) and validates its ladder up front.
	var adaptCfg *adapt.Config
	if *adaptOn {
		if *duration <= 0 {
			*duration = 2 * time.Second
		}
		rungs := strings.Split(*ladder, ",")
		for _, r := range rungs {
			if _, err := all.Props(r); err != nil {
				fail(err)
			}
			if !registry.Applicable(r, info.Name) {
				fail(fmt.Errorf("ladder rung %s is not applicable to %s (Appendix E)", r, info.Name))
			}
		}
		adaptCfg = &adapt.Config{Ladder: rungs}
	}
	var jsonFile *os.File
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fail(err)
		}
		jsonFile = f
	}

	cfg := bench.ServiceConfig{
		Shards:          *shards,
		Schemes:         schemes,
		Structure:       *dsName,
		WorkersPerShard: *workers,
		Clients:         *clients,
		OpsPerClient:    *ops,
		Batch:           *batch,
		NoFuse:          *nofuse,
		KeyRange:        *keyRange,
		Mix:             baseMix,
		Workload:        *wl,
		Schedule:        *mix,
		Seed:            *seed,
		Duration:        *duration,
		Adapt:           adaptCfg,
		FanoutPct:       *fanout,
		FanoutKeys:      *fanoutKeys,
		Retry:           *retry,
		Hedge:           *hedge,
		Breaker:         *breaker,
		FanoutSLO:       *fanoutSLO,
		ObsAddr:         *obsAddr,
	}
	if (*retry || *hedge || *breaker) && *fanout <= 0 {
		fail(fmt.Errorf("-retry/-hedge/-breaker shape the fan-out lane; set -fanout > 0"))
	}
	if *fanoutSLO > 0 && (*duration <= 0 || !(*retry || *hedge || *breaker)) {
		fail(fmt.Errorf("-fanout-slo needs -duration and a resilient lane (-retry/-hedge/-breaker)"))
	}
	if *obsAddr != "" {
		fmt.Printf("eraserve: observability plane will serve on %s (/metrics, /timeline, /debug/pprof/)\n", *obsAddr)
	}
	mode := fmt.Sprintf("%d ops/client", *ops)
	if *duration > 0 {
		mode = fmt.Sprintf("%s window", *duration)
		if adaptCfg != nil {
			mode += fmt.Sprintf(", adaptive ladder %s", *ladder)
		}
	}
	fmt.Printf("eraserve: %d shards (%s) × %s, workload %s/%s, %s\n",
		*shards, strings.Join(schemes, ","), info.Name, *wl, *mix, mode)
	res, err := bench.RunService(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "eraserve: %v\n", err)
		os.Exit(1)
	}
	bench.WriteServiceTable(os.Stdout, res)
	if res.ObsURL != "" {
		fmt.Printf("observability plane served at %s\n", res.ObsURL)
	}
	if jsonFile != nil {
		err := bench.WriteServiceReport(jsonFile, res)
		if cerr := jsonFile.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "eraserve: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
}
