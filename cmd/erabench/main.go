// Command erabench runs the experiment suite and prints the tables and
// series recorded in EXPERIMENTS.md.
//
//	erabench -exp matrix       # EXP-ERA:     the ERA matrix
//	erabench -exp space        # EXP-SPACE:   stalled-reader space bounds
//	erabench -exp stall        # EXP-STALL:   backlog-over-time curves
//	erabench -exp throughput   # EXP-THRU:    scheme × mix × threads sweep
//	erabench -exp michael      # EXP-MICHAEL: Harris+EBR vs Michael+HP
//	erabench -exp all          # everything
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/core/adversary"
	"repro/internal/mem"
	"repro/internal/smr/all"
)

func main() {
	exp := flag.String("exp", "all", "experiment: matrix|space|scale|stall|throughput|structures|michael|all")
	k := flag.Int("k", 800, "churn length for space/matrix experiments")
	ops := flag.Int("ops", 20000, "operations per thread for throughput experiments")
	keyRange := flag.Int("keyrange", 1024, "key universe for throughput experiments")
	structure := flag.String("structure", "harris", "set structure for the throughput sweep")
	flag.Parse()

	run := func(name string, fn func() error) {
		fmt.Printf("==== %s ====\n", name)
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "erabench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }

	if want("matrix") {
		run("EXP-ERA: the ERA matrix (Theorem 6.1)", func() error {
			return bench.MatrixReport(os.Stdout, *k)
		})
	}
	if want("space") {
		run(fmt.Sprintf("EXP-SPACE: stalled-reader space bounds (K=%d)", *k), func() error {
			rows, err := bench.SpaceSweep(*k)
			if err != nil {
				return err
			}
			bench.WriteSpaceTable(os.Stdout, rows)
			return nil
		})
	}
	if want("scale") {
		run("EXP-SCALE: stalled-reader backlog vs structure size (Def 5.1 vs 5.2)", func() error {
			rows, err := bench.ScaleSweep([]string{"hp", "he", "ibr", "vbr", "nbr", "rc"},
				[]int{128, 512, 2048})
			if err != nil {
				return err
			}
			bench.WriteScaleTable(os.Stdout, rows)
			return nil
		})
	}
	if want("stall") {
		run("EXP-STALL: retired backlog over time with one stalled reader", func() error {
			series := make(map[string][]bench.StallSample)
			for _, scheme := range []string{"ebr", "qsbr", "hp", "ibr", "vbr", "nbr"} {
				s, err := bench.StallSeries(scheme, 2000, 200)
				if err != nil {
					return err
				}
				series[scheme] = s
			}
			bench.WriteStallSeries(os.Stdout, series)
			return nil
		})
	}
	if want("throughput") {
		run(fmt.Sprintf("EXP-THRU: throughput sweep on %s", *structure), func() error {
			rows, err := bench.ThroughputSweep(*structure, all.SafeNames(),
				[]bench.Mix{bench.MixReadHeavy, bench.MixBalanced, bench.MixUpdateOnly},
				[]int{1, 2, 4},
				bench.ThroughputConfig{OpsPerThread: *ops, KeyRange: *keyRange, Seed: 42})
			if err != nil {
				return err
			}
			bench.WriteThroughputTable(os.Stdout, rows)
			return nil
		})
	}
	if want("structures") {
		run("EXP-EXT: stalled traversal across structures (§6 open question)", func() error {
			for _, structure := range []string{"harris", "skiplist", "nmtree"} {
				fmt.Printf("-- %s --\n", structure)
				for _, scheme := range all.SafeNames() {
					o, err := adversary.StallTraversal(scheme, structure, *k, mem.Unmap)
					if err != nil {
						return err
					}
					fmt.Println(o)
				}
			}
			return nil
		})
	}
	if want("michael") {
		run("EXP-MICHAEL: Harris+EBR vs Michael+HP (delete-heavy)", func() error {
			rows, err := bench.MichaelComparison(bench.ThroughputConfig{
				Threads: 2, OpsPerThread: *ops, KeyRange: *keyRange, Seed: 42,
			})
			if err != nil {
				return err
			}
			bench.WriteThroughputTable(os.Stdout, rows)
			return nil
		})
	}
}
