// Command erabench runs the experiment suite and prints the tables and
// series recorded in EXPERIMENTS.md.
//
//	erabench -exp matrix       # EXP-ERA:     the ERA matrix
//	erabench -exp space        # EXP-SPACE:   stalled-reader space bounds
//	erabench -exp stall        # EXP-STALL:   backlog-over-time curves
//	erabench -exp throughput   # EXP-THRU:    scheme × mix × threads sweep
//	erabench -exp michael      # EXP-MICHAEL: Harris+EBR vs Michael+HP
//	erabench -exp service      # EXP-SERVICE: sharded store, per-shard SMR
//	erabench -exp chaos        # EXP-CHAOS:   live robustness audit (erachaos)
//	erabench -exp adaptive     # EXP-ADAPT:   static vs adaptive reclamation
//	erabench -exp traverse     # EXP-TRAVERSE: bounded finds + iterator snapshot
//	erabench -exp batch        # EXP-BATCH:   fused vs per-op-bracket batches
//	erabench -exp obs          # EXP-OBS:     fault→verdict→migration causal timelines
//	erabench -exp all          # everything
//
// The throughput experiments are workload-driven: -workload names the key
// distribution (uniform, zipfian, hotset, shifting) and -mix the op-mix
// schedule (steady, phased, oversub), both resolved through the
// internal/workload registries. -seed fixes every stream, so two runs
// with equal flags replay identical operation sequences. -json writes the
// measured rows as a machine-readable benchmark artifact:
//
//	erabench -exp throughput -workload zipfian -mix phased -json BENCH_throughput.json
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/core/adversary"
	"repro/internal/ds/registry"
	"repro/internal/mem"
	"repro/internal/smr/all"
	"repro/internal/workload"
)

func main() {
	exp := flag.String("exp", "all", "experiment: matrix|space|scale|stall|throughput|structures|michael|service|chaos|adaptive|traverse|batch|obs|pipeline|resil|all")
	shards := flag.Int("shards", 4, "shard count for the service experiment")
	duration := flag.Duration("duration", 800*time.Millisecond, "traffic window for the adaptive experiment")
	adaptiveJSON := flag.String("adaptive-json", "BENCH_adaptive.json",
		"adaptive artifact path, written by the adaptive experiment (empty disables)")
	traverseJSON := flag.String("traverse-json", "BENCH_traverse.json",
		"traverse artifact path, written by the traverse experiment (empty disables)")
	traverseShort := flag.Bool("traverse-short", false,
		"run EXP-TRAVERSE at reduced scale (the CI smoke configuration)")
	batchJSON := flag.String("batch-json", "BENCH_batch.json",
		"batch artifact path, written by the batch experiment (empty disables)")
	batchShort := flag.Bool("batch-short", false,
		"run EXP-BATCH at reduced scale (the CI smoke configuration)")
	obsJSON := flag.String("obs-json", "BENCH_obs.json",
		"observability artifact path, written by the obs experiment (empty disables)")
	obsTrace := flag.String("obs-trace", "BENCH_obs_trace.json",
		"Chrome trace-event file for the obs experiment (chrome://tracing; empty disables)")
	obsShort := flag.Bool("obs-short", false,
		"run EXP-OBS at reduced scale (the CI smoke configuration)")
	obsAddr := flag.String("obs-addr", "",
		"serve the live observability plane on this address during the obs experiment (e.g. :8080)")
	pipelineJSON := flag.String("pipeline-json", "BENCH_pipeline.json",
		"pipeline artifact path, written by the pipeline experiment (empty disables)")
	pipelineShort := flag.Bool("pipeline-short", false,
		"run EXP-PIPELINE at reduced scale (the CI smoke configuration)")
	resilJSON := flag.String("resil-json", "BENCH_resil.json",
		"resilience artifact path, written by the resil experiment (empty disables)")
	resilShort := flag.Bool("resil-short", false,
		"run EXP-RESIL at reduced scale (the CI smoke configuration)")
	k := flag.Int("k", 800, "churn length for space/matrix experiments")
	ops := flag.Int("ops", 20000, "operations per thread for throughput experiments")
	keyRange := flag.Int("keyrange", 1024, "key universe for throughput experiments")
	seed := flag.Uint64("seed", 42, "workload seed: runs with equal seeds draw identical operation streams")
	structure := flag.String("structure", "harris", "set structure for the throughput sweep")
	wl := flag.String("workload", "uniform",
		fmt.Sprintf("key distribution for throughput experiments %v", workload.DistNames()))
	mix := flag.String("mix", "steady",
		fmt.Sprintf("op-mix schedule for throughput experiments %v", workload.ScheduleNames()))
	jsonPath := flag.String("json", "", "write throughput rows as a JSON benchmark artifact to this path")
	flag.Parse()

	exps := []string{"matrix", "space", "scale", "stall", "throughput", "structures", "michael", "service", "chaos", "adaptive", "traverse", "batch", "obs", "pipeline", "resil", "all"}
	known := false
	for _, e := range exps {
		known = known || e == *exp
	}
	if !known {
		fmt.Fprintf(os.Stderr, "erabench: unknown experiment %q (have %v)\n", *exp, exps)
		os.Exit(2)
	}
	want := func(name string) bool { return *exp == "all" || *exp == name }

	// Reject bad selections up front rather than after a long run: typo'd
	// workload/schedule names would otherwise only surface once the
	// throughput experiment starts, discarding earlier experiments' work.
	// Only the experiments that consume a flag validate it, so e.g.
	// -exp stall ignores -structure as it always has.
	if want("throughput") || want("michael") || want("service") {
		if _, err := workload.NewDist(*wl, 2); err != nil {
			fmt.Fprintf(os.Stderr, "erabench: %v\n", err)
			os.Exit(2)
		}
		if _, err := workload.NewSchedule(*mix, workload.MixBalanced); err != nil {
			fmt.Fprintf(os.Stderr, "erabench: %v\n", err)
			os.Exit(2)
		}
	}
	if want("throughput") {
		if info, err := registry.Get(*structure); err != nil {
			fmt.Fprintf(os.Stderr, "erabench: %v\n", err)
			os.Exit(2)
		} else if info.Kind != registry.KindSet {
			fmt.Fprintf(os.Stderr, "erabench: throughput runs on set structures, %s is a %v\n", *structure, info.Kind)
			os.Exit(2)
		}
	}
	// -json captures throughput-shaped rows; same up-front treatment,
	// including creating the file now so an unwritable path cannot
	// surface only after a long run.
	jsonEligible := map[string]bool{"throughput": true, "michael": true, "all": true}
	if *jsonPath != "" && !jsonEligible[*exp] {
		fmt.Fprintf(os.Stderr, "erabench: -json applies to the throughput-shaped experiments (throughput, michael, all); -exp %s produces no rows\n", *exp)
		os.Exit(2)
	}
	var jsonFile *os.File
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "erabench: %v\n", err)
			os.Exit(2)
		}
		jsonFile = f
	}
	// The adaptive experiment owns its own artifact (two arms plus an
	// episode log do not fit throughput-shaped rows); create it up front
	// for the same unwritable-path reason.
	var adaptiveFile *os.File
	if *adaptiveJSON != "" && want("adaptive") {
		f, err := os.Create(*adaptiveJSON)
		if err != nil {
			fmt.Fprintf(os.Stderr, "erabench: %v\n", err)
			os.Exit(2)
		}
		adaptiveFile = f
	}
	// Same treatment for the traverse experiment's A/B artifact.
	var traverseFile *os.File
	if *traverseJSON != "" && want("traverse") {
		f, err := os.Create(*traverseJSON)
		if err != nil {
			fmt.Fprintf(os.Stderr, "erabench: %v\n", err)
			os.Exit(2)
		}
		traverseFile = f
	}
	// And for the batch experiment's A/B + gate artifact.
	var batchFile *os.File
	if *batchJSON != "" && want("batch") {
		f, err := os.Create(*batchJSON)
		if err != nil {
			fmt.Fprintf(os.Stderr, "erabench: %v\n", err)
			os.Exit(2)
		}
		batchFile = f
	}
	// And for the obs experiment's artifact pair (timeline + trace).
	var obsFile, obsTraceFile *os.File
	if want("obs") {
		if *obsJSON != "" {
			f, err := os.Create(*obsJSON)
			if err != nil {
				fmt.Fprintf(os.Stderr, "erabench: %v\n", err)
				os.Exit(2)
			}
			obsFile = f
		}
		if *obsTrace != "" {
			f, err := os.Create(*obsTrace)
			if err != nil {
				fmt.Fprintf(os.Stderr, "erabench: %v\n", err)
				os.Exit(2)
			}
			obsTraceFile = f
		}
	}

	// And for the pipeline experiment's A/B + chaos artifact.
	var pipelineFile *os.File
	if *pipelineJSON != "" && want("pipeline") {
		f, err := os.Create(*pipelineJSON)
		if err != nil {
			fmt.Fprintf(os.Stderr, "erabench: %v\n", err)
			os.Exit(2)
		}
		pipelineFile = f
	}

	// And for the resilience experiment's gate artifact.
	var resilFile *os.File
	if *resilJSON != "" && want("resil") {
		f, err := os.Create(*resilJSON)
		if err != nil {
			fmt.Fprintf(os.Stderr, "erabench: %v\n", err)
			os.Exit(2)
		}
		resilFile = f
	}

	// Throughput-shaped rows accumulate here for the -json artifact.
	var artifact []bench.ThroughputRow
	// A zero-row artifact is still written: tooling that asked for the
	// file must find it, empty rows and all.
	writeArtifact := func() {
		if jsonFile == nil {
			return
		}
		if err := bench.WriteJSONReport(jsonFile, *exp, artifact); err != nil {
			jsonFile.Close()
			fmt.Fprintf(os.Stderr, "erabench: %v\n", err)
			os.Exit(1)
		}
		if err := jsonFile.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "erabench: %v\n", err)
			os.Exit(1)
		}
		jsonFile = nil
		fmt.Printf("wrote %d rows to %s\n", len(artifact), *jsonPath)
	}

	run := func(name string, fn func() error) {
		fmt.Printf("==== %s ====\n", name)
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "erabench: %s: %v\n", name, err)
			// A later experiment failing must not discard rows already
			// measured: flush the partial artifact before exiting.
			writeArtifact()
			os.Exit(1)
		}
		fmt.Println()
	}

	if want("matrix") {
		run("EXP-ERA: the ERA matrix (Theorem 6.1)", func() error {
			return bench.MatrixReport(os.Stdout, *k)
		})
	}
	if want("space") {
		run(fmt.Sprintf("EXP-SPACE: stalled-reader space bounds (K=%d)", *k), func() error {
			rows, err := bench.SpaceSweep(*k)
			if err != nil {
				return err
			}
			bench.WriteSpaceTable(os.Stdout, rows)
			return nil
		})
	}
	if want("scale") {
		run("EXP-SCALE: stalled-reader backlog vs structure size (Def 5.1 vs 5.2)", func() error {
			rows, err := bench.ScaleSweep([]string{"hp", "he", "ibr", "vbr", "nbr", "rc"},
				[]int{128, 512, 2048})
			if err != nil {
				return err
			}
			bench.WriteScaleTable(os.Stdout, rows)
			return nil
		})
	}
	if want("stall") {
		run("EXP-STALL: retired backlog over time with one stalled reader", func() error {
			series := make(map[string][]bench.StallSample)
			for _, scheme := range []string{"ebr", "qsbr", "hp", "ibr", "vbr", "nbr"} {
				s, err := bench.StallSeries(scheme, 2000, 200)
				if err != nil {
					return err
				}
				series[scheme] = s
			}
			bench.WriteStallSeries(os.Stdout, series)
			return nil
		})
	}
	if want("throughput") {
		run(fmt.Sprintf("EXP-THRU: throughput sweep on %s (%s/%s)", *structure, *wl, *mix), func() error {
			rows, err := bench.ThroughputSweep(*structure, all.SafeNames(),
				[]bench.Mix{bench.MixReadHeavy, bench.MixBalanced, bench.MixUpdateOnly},
				[]int{1, 2, 4},
				bench.ThroughputConfig{
					OpsPerThread: *ops, KeyRange: *keyRange, Seed: *seed,
					Workload: *wl, Schedule: *mix,
				})
			artifact = append(artifact, rows...)
			if err != nil {
				return err
			}
			bench.WriteThroughputTable(os.Stdout, rows)
			return nil
		})
	}
	if want("structures") {
		run("EXP-EXT: stalled traversal across structures (§6 open question)", func() error {
			// The structure list comes from the registry (sorted, so the
			// table orders stably across runs), restricted to the
			// traversal structures the stall script can target.
			for _, structure := range registry.TraversalSetNames() {
				fmt.Printf("-- %s --\n", structure)
				for _, scheme := range all.SafeNames() {
					o, err := adversary.StallTraversal(scheme, structure, *k, mem.Unmap)
					if err != nil {
						return err
					}
					fmt.Println(o)
				}
			}
			return nil
		})
	}
	if want("service") {
		run(fmt.Sprintf("EXP-SERVICE: sharded store, heterogeneous SMR (ebr+hp, %d shards)", *shards), func() error {
			// The canned deployment alternates EBR and HP across shards of
			// the HP-compatible hashmap — the ERA trade-off made per shard.
			// eraserve exposes the full configuration surface and owns the
			// BENCH_service.json artifact.
			res, err := bench.RunService(bench.ServiceConfig{
				Shards:       *shards,
				Schemes:      []string{"ebr", "hp"},
				Structure:    "hashmap",
				OpsPerClient: *ops,
				KeyRange:     *keyRange,
				Workload:     *wl,
				Schedule:     *mix,
				Seed:         *seed,
			})
			if err != nil {
				return err
			}
			bench.WriteServiceTable(os.Stdout, res)
			return nil
		})
	}
	if want("chaos") {
		run("EXP-CHAOS: live robustness audit under stall injection (ebr/ibr/hp)", func() error {
			// The canned audit: one shard per robustness class, a stall in
			// each, verdicts from the faulted telemetry. erachaos exposes
			// the full fault/schedule surface and owns the
			// BENCH_chaos.json artifact.
			res, err := bench.RunChaos(bench.ChaosConfig{Seed: *seed})
			if err != nil {
				return err
			}
			bench.WriteChaosTable(os.Stdout, res)
			return nil
		})
	}
	if want("adaptive") {
		run(fmt.Sprintf("EXP-ADAPT: static vs adaptive reclamation under delayed-release storm (%s window)", *duration), func() error {
			// The canned A/B: both fleets start on ebr under the storm;
			// the adaptive one carries the controller (ladder
			// ebr→ibr→hp) and must migrate its way out.
			res, err := bench.RunAdaptive(bench.AdaptiveConfig{Duration: *duration, Seed: *seed})
			if err != nil {
				return err
			}
			bench.WriteAdaptiveTable(os.Stdout, res)
			if adaptiveFile != nil {
				err := bench.WriteAdaptiveReport(adaptiveFile, res)
				if cerr := adaptiveFile.Close(); err == nil {
					err = cerr
				}
				adaptiveFile = nil
				if err != nil {
					return err
				}
				fmt.Printf("wrote %s\n", *adaptiveJSON)
			}
			return nil
		})
	}
	if want("traverse") {
		run("EXP-TRAVERSE: bounded-restart finds + O(live-keys) migration snapshot", func() error {
			// The canned A/B pair: head-restart vs bounded finds under the
			// long-chain churn storm, then Contains-scan vs iterator
			// migration snapshots at a large universe with few live keys.
			cfg := bench.TraverseConfig{Seed: *seed}
			if *traverseShort {
				cfg.Duration = 150 * time.Millisecond
				cfg.ChurnKeyRange = 1024
				cfg.SnapKeyRange = 100_000
				cfg.SnapLiveKeys = 2000
			}
			res, err := bench.RunTraverse(cfg)
			if err != nil {
				return err
			}
			bench.WriteTraverseTable(os.Stdout, res)
			if traverseFile != nil {
				err := bench.WriteTraverseReport(traverseFile, res)
				if cerr := traverseFile.Close(); err == nil {
					err = cerr
				}
				traverseFile = nil
				if err != nil {
					return err
				}
				fmt.Printf("wrote %s\n", *traverseJSON)
			}
			return nil
		})
	}
	if want("batch") {
		run("EXP-BATCH: fused vs per-op SMR brackets, zero-alloc spine, parked-worker backlog", func() error {
			// The canned A/B: the same batched churn stream served once
			// through the fused hot path (one amortized bracket per request,
			// key-sorted execution) and once with ShardSpec.NoFuse, across
			// one scheme per reclamation family — then the zero-alloc DoInto
			// count and the parked-worker backlog guard.
			cfg := bench.BatchConfig{Seed: *seed}
			if *batchShort {
				cfg.Duration = 150 * time.Millisecond
				cfg.StallDuration = 150 * time.Millisecond
				cfg.Batches = []int{16}
				cfg.Schemes = []string{"ebr", "hp"}
				cfg.KeyRange = 1024
				cfg.AllocRounds = 500
			}
			res, err := bench.RunBatch(cfg)
			if err != nil {
				return err
			}
			bench.WriteBatchTable(os.Stdout, res)
			if batchFile != nil {
				err := bench.WriteBatchReport(batchFile, res)
				if cerr := batchFile.Close(); err == nil {
					err = cerr
				}
				batchFile = nil
				if err != nil {
					return err
				}
				fmt.Printf("wrote %s\n", *batchJSON)
			}
			return bench.CheckBatch(res)
		})
	}
	if want("obs") {
		run("EXP-OBS: flight recorder + causal fault→verdict→migration timelines", func() error {
			// The canned incident drill: a small adaptive fleet on ebr,
			// one staggered self-healing delayed-release fault per shard,
			// the full plane on tape — then the joined incident chains,
			// the SLO trace, and the recorder's own overhead A/B.
			cfg := bench.ObsConfig{Seed: *seed, ObsAddr: *obsAddr}
			if *obsShort {
				cfg.Duration = 700 * time.Millisecond
				cfg.OverheadRoundDuration = 100 * time.Millisecond
			}
			res, err := bench.RunObs(cfg)
			if err != nil {
				return err
			}
			bench.WriteObsTable(os.Stdout, res)
			if obsFile != nil {
				err := bench.WriteObsReport(obsFile, res)
				if cerr := obsFile.Close(); err == nil {
					err = cerr
				}
				obsFile = nil
				if err != nil {
					return err
				}
				fmt.Printf("wrote %s\n", *obsJSON)
			}
			if obsTraceFile != nil {
				err := bench.WriteObsTrace(obsTraceFile, res)
				if cerr := obsTraceFile.Close(); err == nil {
					err = cerr
				}
				obsTraceFile = nil
				if err != nil {
					return err
				}
				fmt.Printf("wrote %s\n", *obsTrace)
			}
			return bench.CheckObs(res)
		})
	}
	if want("pipeline") {
		run("EXP-PIPELINE: blocking vs pipelined scatter-gather + partial-failure chaos", func() error {
			// The canned A/B: the same fan-out request stream executed as
			// sequential blocking store calls, then through the pipelined
			// executor — followed by the chaos campaign, which stalls one
			// shard mid-traffic and must come back with partial results,
			// shed/timeout accounting, and a clean store after heal.
			cfg := bench.PipelineConfig{Seed: *seed}
			if *pipelineShort {
				cfg.Shards = 4
				cfg.Duration = 250 * time.Millisecond
				cfg.ChaosDuration = 400 * time.Millisecond
				cfg.KeyRange = 1024
				cfg.LegTimeout = 20 * time.Millisecond
			}
			res, err := bench.RunPipeline(cfg)
			if err != nil {
				return err
			}
			bench.WritePipelineTable(os.Stdout, res)
			if pipelineFile != nil {
				err := bench.WritePipelineReport(pipelineFile, res)
				if cerr := pipelineFile.Close(); err == nil {
					err = cerr
				}
				pipelineFile = nil
				if err != nil {
					return err
				}
				fmt.Printf("wrote %s\n", *pipelineJSON)
			}
			return bench.CheckPipeline(res)
		})
	}
	if want("resil") {
		run("EXP-RESIL: typed retries, hedged legs, retry-budget amplification bound", func() error {
			// The canned resilience drill: the naive executor vs the retry
			// client under staggered stall + delayed-release pulses (paced
			// open-loop offered load, so goodput is comparable), then the
			// hedge A/B against a one-slow-worker park pulse.
			cfg := bench.ResilConfig{Seed: *seed}
			if *resilShort {
				cfg.Duration = 500 * time.Millisecond
				cfg.HedgeDuration = 300 * time.Millisecond
				cfg.KeyRange = 2048
			}
			res, err := bench.RunResil(cfg)
			if err != nil {
				return err
			}
			bench.WriteResilTable(os.Stdout, res)
			if resilFile != nil {
				err := bench.WriteResilReport(resilFile, res)
				if cerr := resilFile.Close(); err == nil {
					err = cerr
				}
				resilFile = nil
				if err != nil {
					return err
				}
				fmt.Printf("wrote %s\n", *resilJSON)
			}
			return bench.CheckResil(res)
		})
	}
	if want("michael") {
		run("EXP-MICHAEL: Harris+EBR vs Michael+HP (delete-heavy)", func() error {
			rows, err := bench.MichaelComparison(bench.ThroughputConfig{
				Threads: 2, OpsPerThread: *ops, KeyRange: *keyRange, Seed: *seed,
				Workload: *wl, Schedule: *mix,
			})
			artifact = append(artifact, rows...)
			if err != nil {
				return err
			}
			bench.WriteThroughputTable(os.Stdout, rows)
			return nil
		})
	}
	writeArtifact()
}
