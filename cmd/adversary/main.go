// Command adversary replays the paper's two scripted executions for a
// chosen scheme (or all schemes) and prints the structured outcome.
//
//	adversary -fig1 -scheme hp -k 1000   # Theorem 6.1 lower bound
//	adversary -fig2 -scheme ibr          # Appendix E incompatibility
//	adversary -fig1 -fig2                # both, all schemes
//
// The -mode flag selects what reclaimed memory does: "unmap" returns it to
// system space (dangling accesses are simulated segmentation faults),
// "reuse" recycles it in program space (dangling accesses read another
// node's data). Type-preserving schemes always run in reuse mode.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core/adversary"
	"repro/internal/mem"
	"repro/internal/smr/all"
)

func main() {
	fig1 := flag.Bool("fig1", false, "run the Figure 1 / Theorem 6.1 execution")
	fig2 := flag.Bool("fig2", false, "run the Figure 2 / Appendix E execution")
	scheme := flag.String("scheme", "", "scheme to test (default: all)")
	k := flag.Int("k", 600, "Figure 1 churn length")
	modeName := flag.String("mode", "unmap", `reclaim mode: "unmap" or "reuse"`)
	flag.Parse()

	if !*fig1 && !*fig2 {
		*fig1, *fig2 = true, true
	}
	mode := mem.Unmap
	switch *modeName {
	case "unmap":
	case "reuse":
		mode = mem.Reuse
	default:
		fmt.Fprintf(os.Stderr, "adversary: unknown mode %q\n", *modeName)
		os.Exit(1)
	}
	schemes := all.Names()
	if *scheme != "" {
		schemes = []string{*scheme}
	}

	fail := false
	for _, s := range schemes {
		if *fig1 {
			o, err := adversary.Figure1(s, *k, mode)
			if err != nil {
				fmt.Fprintln(os.Stderr, "adversary:", err)
				os.Exit(1)
			}
			fmt.Println(o)
			if !o.Safe {
				fail = true
			}
		}
		if *fig2 {
			o, err := adversary.Figure2(s, mode)
			if err != nil {
				fmt.Fprintln(os.Stderr, "adversary:", err)
				os.Exit(1)
			}
			fmt.Println(o)
			if !o.Safe {
				fail = true
			}
		}
	}
	if fail && *scheme != "" {
		os.Exit(2) // a specifically requested scheme violated safety
	}
}
