// Command erachaos runs the chaos-injection robustness audit: a sharded
// store with one shard per scheme, closed-loop client traffic, scheduled
// fault injection, and a live telemetry audit of each scheme's declared
// robustness class (Definitions 5.1–5.2) against the backlog growth its
// faulted telemetry actually shows.
//
//	erachaos                                  # stall audit: ebr, ibr, hp
//	erachaos -schemes ebr,qsbr,he,hp,vbr      # wider sweep
//	erachaos -faults stall,delayed-release    # compound adversity
//	erachaos -duration 2s -strict             # longer run; exit 1 on violation
//	erachaos -duration 5s -obs :8080          # live /metrics + /timeline + pprof
//
// The default run injects a reclamation-critical stall into every shard
// an eighth of the way into the traffic window and holds it to the end:
// the paper predicts — and the verdict table shows — the EBR shard's
// backlog growing without bound while the HP shard's stays flat.
//
// The audit is written as a machine-readable artifact (BENCH_chaos.json
// by default; -json "" disables), verdict series included, so runs form
// a trajectory tooling can diff and plot.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/chaos"
	"repro/internal/ds/registry"
	"repro/internal/smr/all"
	"repro/internal/workload"
)

func main() {
	schemes := flag.String("schemes", "ebr,ibr,hp",
		fmt.Sprintf("comma-separated schemes, one shard each %v", all.SafeNames()))
	faults := flag.String("faults", "stall",
		fmt.Sprintf("comma-separated faults injected into every shard %v", chaos.Names()))
	dsName := flag.String("ds", "hashmap", "set structure per shard (ds/registry name)")
	workers := flag.Int("workers", 0, "workers per shard (0 = one survivor above the stall-family fault count)")
	clients := flag.Int("clients", 0, "closed-loop client goroutines (0 = 2×shards)")
	batch := flag.Int("batch", 16, "operations per service request")
	keyRange := flag.Int("keyrange", 2048, "key universe size")
	duration := flag.Duration("duration", 400*time.Millisecond, "traffic window")
	wl := flag.String("workload", "uniform",
		fmt.Sprintf("key distribution %v", workload.DistNames()))
	mix := flag.String("mix", "steady",
		fmt.Sprintf("op-mix schedule %v", workload.ScheduleNames()))
	opmix := flag.String("opmix", "50/25/25", "base contains/insert/delete percentages")
	seed := flag.Uint64("seed", 42, "workload seed: equal seeds draw identical client streams")
	obsAddr := flag.String("obs", "",
		"serve the live observability plane (/metrics, /timeline, /debug/pprof/) on this address during the run, e.g. :8080")
	jsonPath := flag.String("json", "BENCH_chaos.json", "chaos artifact path (empty disables)")
	strict := flag.Bool("strict", false, "exit 1 when any audited verdict violates its declared class")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "erachaos: %v\n", err)
		os.Exit(2)
	}
	// Validate every selection up front: a typo'd scheme or fault name
	// must not surface after the prefill, and an unwritable artifact path
	// not after the run.
	schemeList := strings.Split(*schemes, ",")
	for _, s := range schemeList {
		if _, err := all.Props(s); err != nil {
			fail(err)
		}
	}
	info, err := registry.Get(*dsName)
	if err != nil {
		fail(err)
	}
	for _, s := range schemeList {
		if !registry.Applicable(s, info.Name) {
			fail(fmt.Errorf("scheme %s is not applicable to %s (Appendix E)", s, info.Name))
		}
	}
	faultList := strings.Split(*faults, ",")
	for _, f := range faultList {
		if _, err := chaos.New(f, chaos.Params{}); err != nil {
			fail(err)
		}
	}
	if _, err := workload.NewDist(*wl, 2); err != nil {
		fail(err)
	}
	if _, err := workload.NewSchedule(*mix, workload.MixBalanced); err != nil {
		fail(err)
	}
	baseMix, err := workload.ParseMix(*opmix)
	if err != nil {
		fail(err)
	}
	var jsonFile *os.File
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fail(err)
		}
		jsonFile = f
	}

	fmt.Printf("erachaos: %d shards (%s) × %s, faults %v, %s window, workload %s/%s\n",
		len(schemeList), strings.Join(schemeList, ","), info.Name, faultList, *duration, *wl, *mix)
	if *obsAddr != "" {
		fmt.Printf("erachaos: observability plane will serve on %s (/metrics, /timeline, /debug/pprof/)\n", *obsAddr)
	}
	res, err := bench.RunChaos(bench.ChaosConfig{
		Schemes:         schemeList,
		Structure:       *dsName,
		WorkersPerShard: *workers,
		Clients:         *clients,
		Batch:           *batch,
		KeyRange:        *keyRange,
		Duration:        *duration,
		Faults:          faultList,
		Mix:             baseMix,
		Workload:        *wl,
		Schedule:        *mix,
		Seed:            *seed,
		ObsAddr:         *obsAddr,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "erachaos: %v\n", err)
		os.Exit(1)
	}
	bench.WriteChaosTable(os.Stdout, res)
	if res.ObsURL != "" {
		fmt.Printf("observability plane served at %s\n", res.ObsURL)
	}
	if jsonFile != nil {
		err := bench.WriteChaosReport(jsonFile, res)
		if cerr := jsonFile.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "erachaos: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
	if *strict {
		if err := bench.CheckChaos(res); err != nil {
			fmt.Fprintf(os.Stderr, "erachaos: %v\n", err)
			os.Exit(1)
		}
	}
}
