// Quickstart: build a simulated manual heap, pick a reclamation scheme,
// integrate it with Harris's lock-free linked-list, and watch nodes move
// through the paper's life-cycle (allocate -> share -> retire -> reclaim).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/ds"
	"repro/internal/ds/harris"
	"repro/internal/mem"
	"repro/internal/smr"
	"repro/internal/smr/all"
)

func main() {
	// A heap of 4096 node slots, two payload words per node (key + next),
	// and the standard scheme-metadata words. Reuse mode recycles
	// reclaimed slots into program space.
	arena := mem.NewArena(mem.Config{
		Slots:        4096,
		PayloadWords: 2,
		MetaWords:    smr.MetaWords,
		Threads:      2,
		Mode:         mem.Reuse,
	})

	// Epoch-based reclamation: the easiest scheme to integrate, and
	// strongly applicable — but not robust (see examples/stallrobustness).
	scheme, err := all.New("ebr", arena, 2, 0)
	if err != nil {
		log.Fatal(err)
	}

	// The data structure is written once against the scheme barriers; any
	// scheme plugs in without touching the algorithm.
	list, err := harris.New(scheme, ds.Options{})
	if err != nil {
		log.Fatal(err)
	}

	for key := int64(1); key <= 10; key++ {
		if _, err := list.Insert(0, key); err != nil {
			log.Fatal(err)
		}
	}
	for key := int64(2); key <= 10; key += 2 {
		if _, err := list.Delete(0, key); err != nil {
			log.Fatal(err)
		}
	}
	present, err := list.Contains(0, 3)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("keys after deleting the evens:", list.Keys())
	fmt.Println("contains(3):", present)

	// Drive reclamation to quiescence and inspect the heap accounting.
	scheme.Flush(0)
	scheme.Flush(0)
	st := arena.Stats().Snapshot()
	fmt.Printf("heap: %d allocs, %d retires, %d reclaims, %d still retired, %d active\n",
		st.Allocs, st.Retires, st.Reclaims, st.Retired, st.Active)
	fmt.Printf("safety: %d unsafe accesses, %d faults\n",
		st.UnsafeLoads+st.UnsafeStores, st.Faults)
}
