// Stall robustness: the Figure 1 experiment as a narrative. One thread
// stalls at the start of a Harris-list traversal while another churns
// insert/delete pairs; the retired-node backlog separates the robustness
// classes of Definition 5.1/5.2:
//
//   - EBR/QSBR: the stalled thread pins the epoch — the backlog grows
//     without bound (not even weakly robust).
//   - HP/HE/IBR: the backlog stays bounded... but resuming the stalled
//     thread dereferences reclaimed memory (not applicable to this list).
//   - VBR/NBR: bounded backlog and a safe resume — bought with rollbacks
//     (not easily integrated). That three-way split is the ERA theorem.
//
//	go run ./examples/stallrobustness [-k 2000]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core/adversary"
	"repro/internal/mem"
	"repro/internal/smr/all"
)

func main() {
	k := flag.Int("k", 2000, "churn length (insert/delete pairs)")
	flag.Parse()

	fmt.Printf("Theorem 6.1 workload: T1 stalls mid-traversal, T2 churns %d insert/delete pairs.\n", *k)
	fmt.Printf("The data structure never exceeds 4 active nodes (max_active = 4).\n\n")
	fmt.Printf("%-11s %-9s %-12s %13s %9s %9s %9s\n",
		"scheme", "verdict", "backlog", "peak-retired", "faults", "restarts", "neutral.")

	for _, scheme := range all.Names() {
		o, err := adversary.Figure1(scheme, *k, mem.Unmap)
		if err != nil {
			log.Fatal(err)
		}
		verdict, growth := "safe", "bounded"
		if !o.Safe {
			verdict = "UNSAFE"
		}
		if !o.Bounded {
			growth = "UNBOUNDED"
		}
		fmt.Printf("%-11s %-9s %-12s %13d %9d %9d %9d\n",
			scheme, verdict, growth, o.PeakRetired, o.Faults, o.Restarts, o.Neutralizations)
	}

	fmt.Println("\nReading the table with the ERA theorem:")
	fmt.Println("  safe + UNBOUNDED  -> easy + applicable, not robust      (EBR, QSBR, RC, none)")
	fmt.Println("  UNSAFE + bounded  -> easy + robust, not applicable here (HP, HE, IBR)")
	fmt.Println("  safe + bounded    -> robust + applicable, rollbacks     (VBR, NBR)")
}
