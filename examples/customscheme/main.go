// Customscheme: implementing a brand-new reclamation scheme against the
// smr.Scheme interface and evaluating it with the repository's machinery.
//
// The scheme here is "deferred free": retired nodes wait in a FIFO ring of
// fixed depth and reclaim when they rotate out. It is trivially easy to
// integrate (no rollbacks, no phases) and bounded in space — so by the ERA
// theorem it cannot be widely applicable, and indeed running it through
// the Theorem 6.1 workload on Harris's list dereferences freed memory.
//
//	go run ./examples/customscheme
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/ds"
	"repro/internal/ds/harris"
	"repro/internal/hist"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/smr"
)

// Deferred is the example scheme: a per-thread FIFO ring of retired nodes.
// Old enough nodes are assumed dead — an assumption a stalled traversal
// violates, which is exactly what the evaluation exposes.
type Deferred struct {
	smr.Base
	depth int
}

var _ smr.Scheme = (*Deferred)(nil)

// NewDeferred builds the scheme over arena a for n threads.
func NewDeferred(a *mem.Arena, n, depth int) *Deferred {
	if depth <= 0 {
		depth = 64
	}
	return &Deferred{Base: smr.NewBase(a, n, depth), depth: depth}
}

// Name implements smr.Scheme.
func (d *Deferred) Name() string { return "deferred" }

// Props implements smr.Scheme. The claims below are what the evaluation
// checks: easy (no rollbacks, no phases) and robust (fixed ring depth);
// applicability is claimed Restricted because the scheme has no way to
// know when a stalled reader still holds references.
func (d *Deferred) Props() smr.Props {
	return smr.Props{
		SelfContained: true,
		Robustness:    smr.Robust,
		Applicability: smr.Restricted,
	}
}

// BeginOp implements smr.Scheme.
func (d *Deferred) BeginOp(tid int) {}

// EndOp implements smr.Scheme.
func (d *Deferred) EndOp(tid int) {}

// Alloc implements smr.Scheme.
func (d *Deferred) Alloc(tid int) (mem.Ref, error) { return d.Arena.Alloc(tid) }

// Retire implements smr.Scheme: push into the ring; reclaim the oldest
// entry once the ring is full.
func (d *Deferred) Retire(tid int, r mem.Ref) {
	if d.Arena.Retire(tid, r) != nil {
		return
	}
	l := &d.Lists[tid].Refs
	*l = append(*l, r)
	if len(*l) > d.depth {
		oldest := (*l)[0]
		*l = (*l)[1:]
		_ = d.Arena.Reclaim(tid, oldest)
	}
}

// Flush implements smr.Scheme; the ring drains only by rotation, so Flush
// is a no-op (draining eagerly would break even sequential use).
func (d *Deferred) Flush(tid int) {}

// Read implements smr.Scheme.
func (d *Deferred) Read(tid int, r mem.Ref, w int) (uint64, bool) {
	return d.TransparentRead(tid, r, w)
}

// ReadPtr implements smr.Scheme.
func (d *Deferred) ReadPtr(tid, idx int, src mem.Ref, w int) (mem.Ref, bool) {
	return d.TransparentReadPtr(tid, src, w)
}

// Write implements smr.Scheme.
func (d *Deferred) Write(tid int, r mem.Ref, w int, v uint64) bool {
	return d.TransparentWrite(tid, r, w, v)
}

// WritePtr implements smr.Scheme.
func (d *Deferred) WritePtr(tid int, r mem.Ref, w int, v mem.Ref) bool {
	return d.TransparentWrite(tid, r, w, uint64(v))
}

// CAS implements smr.Scheme.
func (d *Deferred) CAS(tid int, r mem.Ref, w int, old, new uint64) (bool, bool) {
	return d.TransparentCAS(tid, r, w, old, new)
}

// CASPtr implements smr.Scheme.
func (d *Deferred) CASPtr(tid int, r mem.Ref, w int, old, new mem.Ref) (bool, bool) {
	return d.TransparentCAS(tid, r, w, uint64(old), uint64(new))
}

// Reserve implements smr.Scheme.
func (d *Deferred) Reserve(tid int, refs ...mem.Ref) bool { return true }

func main() {
	// 1. Classify integration from the property sheet (Definition 5.3).
	props := (&Deferred{}).Props()
	integ := core.ClassifyIntegration("deferred", props)
	fmt.Printf("integration: easy=%v (rollbacks=%v, phases=%v)\n",
		integ.Easy, !integ.WellFormed, integ.PhaseDiscipline)

	// 2. Sequential + concurrent correctness on Harris's list, with a
	//    linearizability check over barrier-separated rounds.
	arena := mem.NewArena(mem.Config{
		Slots: 1 << 14, PayloadWords: 2, MetaWords: smr.MetaWords, Threads: 4, Mode: mem.Reuse,
	})
	scheme := NewDeferred(arena, 4, 64)
	list, err := harris.New(scheme, ds.Options{})
	if err != nil {
		log.Fatal(err)
	}
	rec := hist.NewRecorder(4)
	var windows [][]hist.Op
	for round := 0; round < 6; round++ {
		done := make(chan error, 4)
		for tid := 0; tid < 4; tid++ {
			go func(tid, round int) {
				for i := 0; i < 3; i++ {
					key := int64((tid*7 + round*3 + i) % 8)
					switch (tid + i) % 3 {
					case 0:
						p := rec.Begin(tid, hist.OpInsert, key)
						ok, err := list.Insert(tid, key)
						if err != nil {
							done <- err
							return
						}
						rec.End(tid, p, ok, 0)
					case 1:
						p := rec.Begin(tid, hist.OpDelete, key)
						ok, err := list.Delete(tid, key)
						if err != nil {
							done <- err
							return
						}
						rec.End(tid, p, ok, 0)
					default:
						p := rec.Begin(tid, hist.OpContains, key)
						ok, err := list.Contains(tid, key)
						if err != nil {
							done <- err
							return
						}
						rec.End(tid, p, ok, 0)
					}
				}
				done <- nil
			}(tid, round)
		}
		for i := 0; i < 4; i++ {
			if err := <-done; err != nil {
				log.Fatal(err)
			}
		}
		windows = append(windows, rec.History())
		rec.Reset()
	}
	lin, err := hist.CheckChained(hist.SetSpec{}, windows)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("linearizable under light concurrency: %v\n", lin)
	fmt.Printf("safety so far: %s\n", core.Safety(arena, scheme))

	// 3. The Theorem 6.1 stress: stall a traversal, churn past the ring
	//    depth, resume. The ring rotates the stalled thread's path out of
	//    existence — the "robust + easy" corner cannot be safe here.
	arena2 := mem.NewArena(mem.Config{
		Slots: 1 << 14, PayloadWords: 2, MetaWords: smr.MetaWords, Threads: 2, Mode: mem.Unmap,
	})
	scheme2 := NewDeferred(arena2, 2, 64)
	bp := sched.NewBreakpoints()
	list2, err := harris.New(scheme2, ds.Options{Gate: bp})
	if err != nil {
		log.Fatal(err)
	}
	for _, k := range []int64{1, 2} {
		if _, err := list2.Insert(1, k); err != nil {
			log.Fatal(err)
		}
	}
	stallPoint := bp.Arm(0, ds.PointSearchHead, nil, 0)
	t1 := sched.Go(func() error {
		_, err := list2.Delete(0, 3)
		return err
	})
	<-stallPoint.Reached()
	if _, err := list2.Delete(1, 1); err != nil {
		log.Fatal(err)
	}
	for n := int64(2); n <= 400; n++ {
		if _, err := list2.Insert(1, n+1); err != nil {
			log.Fatal(err)
		}
		if _, err := list2.Delete(1, n); err != nil {
			log.Fatal(err)
		}
	}
	peak := arena2.Stats().MaxRetired()
	stallPoint.Release()
	_ = t1.Wait()

	rep := core.Safety(arena2, scheme2)
	fmt.Printf("stalled-reader stress: peak backlog %d (ring depth 64) — bounded\n", peak)
	fmt.Printf("stalled-reader safety: %s\n", rep)
	fmt.Println()
	if integ.Easy && peak < 200 && !rep.Safe() {
		fmt.Println("verdict: easy + robust, and therefore (per the ERA theorem) NOT widely applicable —")
		fmt.Println("the stalled traversal dereferenced memory the ring had already rotated out.")
	}
}
