// Workloads: the layered benchmark engine in one page. A scenario is two
// registry names — a key distribution and an op-mix schedule — so sweeping
// scenarios is a loop over strings, not new harness code. The run prints
// the human table and writes the same rows as a machine-readable JSON
// benchmark artifact with throughput and p50/p99 latency.
//
//	go run ./examples/workloads [-out BENCH_workloads.json]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/bench"
	"repro/internal/workload"
)

func main() {
	out := flag.String("out", "BENCH_workloads.json", "benchmark artifact path ('' disables)")
	flag.Parse()

	fmt.Println("Every key distribution × schedule on Michael's list, EBR vs VBR:")
	fmt.Println()

	var rows []bench.ThroughputRow
	for _, dist := range workload.DistNames() {
		for _, sched := range workload.ScheduleNames() {
			for _, scheme := range []string{"ebr", "vbr"} {
				row, err := bench.Throughput(scheme, "michael", bench.ThroughputConfig{
					Threads:      2,
					OpsPerThread: 8000,
					KeyRange:     512,
					Mix:          bench.MixBalanced,
					Workload:     dist,
					Schedule:     sched,
					Seed:         42,
				})
				if err != nil {
					log.Fatal(err)
				}
				rows = append(rows, row)
			}
		}
	}
	bench.WriteThroughputTable(os.Stdout, rows)

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		if err := bench.WriteJSONReport(f, "workloads", rows); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %d rows to %s\n", len(rows), *out)
	}

	fmt.Println()
	fmt.Println("Reading the table: zipfian/hotset concentrate traffic on few keys, so")
	fmt.Println("contention (and VBR's rollback restarts) rises; shifting churns the")
	fmt.Println("working set, so every scheme pays cold-traversal costs; the oversub")
	fmt.Println("schedule yields the processor mid-quantum, which stretches p99 for")
	fmt.Println("epoch-based schemes whose reclamation waits on every thread's progress.")
}
