// Figure 2: the Appendix E execution, narrated step by step. A thread
// protects node 15, stalls, and later validates a perfectly stable
// pointer — yet dereferences reclaimed memory, because protection-based
// validation (HP, HE, IBR) checks the *source* pointer, and Harris's list
// traverses logically deleted nodes whose successors can already be gone.
//
//	go run ./examples/figure2 [-scheme hp]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core/adversary"
	"repro/internal/mem"
	"repro/internal/smr/all"
)

func main() {
	scheme := flag.String("scheme", "", "scheme to run (default: hp, he, ibr, and ebr for contrast)")
	flag.Parse()

	schemes := []string{"hp", "he", "ibr", "ebr"}
	if *scheme != "" {
		schemes = []string{*scheme}
	}

	k := adversary.Figure2Keys
	fmt.Println("The Appendix E script:")
	fmt.Printf("  (a) list = {%d, %d}; T1 starts insert(%d), protects node %d, stalls before reading its next pointer\n",
		k.A, k.C, k.Insert, k.A)
	fmt.Printf("  (b) node %d is inserted between %d and %d\n", k.B, k.A, k.C)
	fmt.Printf("  (c) T2 marks %d, T3 marks %d — neither unlinks\n", k.B, k.A)
	fmt.Printf("  (d) T4's delete(%d) traversal bulk-unlinks the marked run %d -> %d\n", k.Probe, k.A, k.B)
	fmt.Printf("      T2 and T3 retire their victims; scans reclaim %d (node %d survives via T1's protection)\n", k.B, k.A)
	fmt.Printf("  (e) T1 resumes: reads %d's next pointer (stable!), validates, dereferences node %d\n\n", k.A, k.B)

	for _, s := range schemes {
		if _, err := all.Props(s); err != nil {
			log.Fatal(err)
		}
		o, err := adversary.Figure2(s, mem.Unmap)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(" ", o)
		switch {
		case o.Faults > 0:
			fmt.Printf("    -> %s dereferenced system space: a segmentation fault in a real system\n", s)
		case o.StaleUses > 0:
			fmt.Printf("    -> %s handed a reclaimed node's contents to the list: silent corruption in a real system\n", s)
		case o.Restarts > 0 || o.Neutralizations > 0:
			fmt.Printf("    -> %s detected the stale access and rolled the operation back\n", s)
		default:
			fmt.Printf("    -> %s never reclaimed node %d while T1 could reach it\n", s, k.B)
		}
	}
}
